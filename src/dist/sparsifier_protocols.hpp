// Single-round distributed constructions of the two sparsifiers
// (Section 3.2): the paper's random G_Δ (each node marks Δ random ports
// and sends a 1-bit message along each — no identifier knowledge needed,
// so KT₀ suffices) and Solomon's bounded-degree sparsifier (mark the first
// Δ_α ports; keep edges whose mark arrived from BOTH sides).
#pragma once

#include "dist/engine.hpp"
#include "graph/edge.hpp"

namespace matchsparse::dist {

/// Tags shared by the sparsifier protocols.
inline constexpr std::uint32_t kTagMark = 1;

/// One communication round: every node marks min(deg, 2Δ... per the
/// low-degree tweak: all ports if deg <= 2Δ, else Δ random ports) and
/// transmits a 1-bit MARK on each. The harness collects the union of
/// marked edges as the sparsifier.
class RandomSparsifierProtocol : public Protocol {
 public:
  RandomSparsifierProtocol(VertexId num_nodes, VertexId delta)
      : n_(num_nodes), delta_(delta) {}

  void on_round(NodeContext& node) override;
  bool done() const override { return nodes_finished_ == n_; }

  /// Canonical sparsifier edge list (valid once done()).
  EdgeList edges() const;

 private:
  VertexId n_;
  VertexId delta_;
  VertexId nodes_finished_ = 0;
  EdgeList collected_;
};

/// Broadcast-system variant of the G_Δ construction — the paper's §3.2
/// remark: when every transmission reaches all neighbors, the 1-bit
/// unicast trick is unavailable and a node must broadcast the LIST of its
/// marked ports, one message of O(Δ·log n) bits. Same output subgraph
/// distribution; the bench contrasts the traffic of the two models.
class BroadcastSparsifierProtocol : public Protocol {
 public:
  BroadcastSparsifierProtocol(VertexId num_nodes, VertexId delta)
      : n_(num_nodes), delta_(delta) {}

  void on_round(NodeContext& node) override;
  bool done() const override { return nodes_finished_ == n_; }

  EdgeList edges() const;

 private:
  VertexId n_;
  VertexId delta_;
  VertexId nodes_finished_ = 0;
  EdgeList collected_;
};

/// Solomon ITCS'18 degree sparsifier: round 0 sends a MARK on the first
/// min(deg, Δ_α) ports; round 1 keeps an edge iff a MARK arrived on a port
/// the node itself marked.
class DegreeSparsifierProtocol : public Protocol {
 public:
  DegreeSparsifierProtocol(VertexId num_nodes, VertexId delta_alpha)
      : n_(num_nodes), delta_alpha_(delta_alpha) {}

  void on_round(NodeContext& node) override;
  bool done() const override { return nodes_finished_ == n_; }

  EdgeList edges() const;

 private:
  VertexId n_;
  VertexId delta_alpha_;
  VertexId nodes_finished_ = 0;
  EdgeList kept_;
};

}  // namespace matchsparse::dist
