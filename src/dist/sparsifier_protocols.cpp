#include "dist/sparsifier_protocols.hpp"

#include <algorithm>

namespace matchsparse::dist {

void RandomSparsifierProtocol::on_round(NodeContext& node) {
  if (node.round() != 0) return;
  const VertexId deg = node.degree();
  if (deg > 0) {
    if (deg <= 2 * delta_) {
      for (VertexId port = 0; port < deg; ++port) {
        node.send(port, Message::of(kTagMark));
        collected_.push_back(
            Edge(node.id(), node.neighbor_id(port)).normalized());
      }
    } else {
      for (std::uint64_t port :
           node.rng().sample_without_replacement(deg, delta_)) {
        node.send(static_cast<VertexId>(port), Message::of(kTagMark));
        collected_.push_back(
            Edge(node.id(),
                 node.neighbor_id(static_cast<VertexId>(port)))
                .normalized());
      }
    }
  }
  ++nodes_finished_;
}

EdgeList RandomSparsifierProtocol::edges() const {
  EdgeList out = collected_;
  normalize_edge_list(out);
  return out;
}

void BroadcastSparsifierProtocol::on_round(NodeContext& node) {
  if (node.round() != 0) return;
  const VertexId deg = node.degree();
  if (deg > 0) {
    Message msg = Message::of(kTagMark);
    if (deg <= 2 * delta_) {
      for (VertexId port = 0; port < deg; ++port) {
        msg.blob.push_back(port);
        collected_.push_back(
            Edge(node.id(), node.neighbor_id(port)).normalized());
      }
    } else {
      for (std::uint64_t port :
           node.rng().sample_without_replacement(deg, delta_)) {
        msg.blob.push_back(static_cast<VertexId>(port));
        collected_.push_back(
            Edge(node.id(),
                 node.neighbor_id(static_cast<VertexId>(port)))
                .normalized());
      }
    }
    // One transmission carrying the whole marked-port list, heard by all
    // neighbors (each can check whether its own port is listed).
    node.broadcast(msg);
  }
  ++nodes_finished_;
}

EdgeList BroadcastSparsifierProtocol::edges() const {
  EdgeList out = collected_;
  normalize_edge_list(out);
  return out;
}

void DegreeSparsifierProtocol::on_round(NodeContext& node) {
  const VertexId take = std::min(node.degree(), delta_alpha_);
  if (node.round() == 0) {
    // Ports are id-sorted, so "first Δ_α ports" is a deterministic rule.
    for (VertexId port = 0; port < take; ++port) {
      node.send(port, Message::of(kTagMark));
    }
    return;
  }
  if (node.round() == 1) {
    for (const Incoming& in : node.inbox()) {
      if (in.msg.tag == kTagMark && in.port < take) {
        kept_.push_back(
            Edge(node.id(), node.neighbor_id(in.port)).normalized());
      }
    }
    ++nodes_finished_;
  }
}

EdgeList DegreeSparsifierProtocol::edges() const {
  EdgeList out = kept_;
  normalize_edge_list(out);  // both endpoints record every kept edge
  return out;
}

}  // namespace matchsparse::dist
