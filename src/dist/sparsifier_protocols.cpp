#include "dist/sparsifier_protocols.hpp"

#include <algorithm>

namespace matchsparse::dist {

namespace {
bool all_idle(const std::vector<ReliableLink>& links) {
  for (const ReliableLink& link : links) {
    if (!link.idle()) return false;
  }
  return true;
}
}  // namespace

RandomSparsifierProtocol::RandomSparsifierProtocol(VertexId num_nodes,
                                                   VertexId delta,
                                                   ReliableLinkOptions link)
    : n_(num_nodes),
      delta_(delta),
      link_opt_(link),
      initialized_(num_nodes, 0),
      links_(num_nodes) {}

void RandomSparsifierProtocol::on_round(NodeContext& node) {
  const VertexId v = node.id();
  if (!initialized_[v]) {
    // First alive round: the marking decision is a pure function of this
    // node's RNG substream, so a crash before round 0 only delays it.
    initialized_[v] = 1;
    ++nodes_initialized_;
    const VertexId deg = node.degree();
    links_[v].reset(deg, link_opt_, node.lossless());
    if (deg > 0) {
      if (deg <= 2 * delta_) {
        for (VertexId port = 0; port < deg; ++port) {
          links_[v].send(node, port, Message::of(kTagMark));
          collected_.push_back(
              Edge(node.id(), node.neighbor_id(port)).normalized());
        }
      } else {
        for (std::uint64_t port :
             node.rng().sample_without_replacement(deg, delta_)) {
          links_[v].send(node, static_cast<VertexId>(port),
                         Message::of(kTagMark));
          collected_.push_back(
              Edge(node.id(),
                   node.neighbor_id(static_cast<VertexId>(port)))
                  .normalized());
        }
      }
    }
  }
  // Marks are recorded sender-side; the receive path only has to drive
  // acks and retransmissions (a no-op on a lossless network).
  links_[v].begin_round(node);
}

bool RandomSparsifierProtocol::done() const {
  return nodes_initialized_ == n_ && all_idle(links_);
}

EdgeList RandomSparsifierProtocol::edges() const {
  EdgeList out = collected_;
  normalize_edge_list(out);
  return out;
}

BroadcastSparsifierProtocol::BroadcastSparsifierProtocol(
    VertexId num_nodes, VertexId delta, ReliableLinkOptions link)
    : n_(num_nodes),
      delta_(delta),
      link_opt_(link),
      initialized_(num_nodes, 0),
      links_(num_nodes) {}

void BroadcastSparsifierProtocol::on_round(NodeContext& node) {
  const VertexId v = node.id();
  if (!initialized_[v]) {
    initialized_[v] = 1;
    ++nodes_initialized_;
    const VertexId deg = node.degree();
    links_[v].reset(deg, link_opt_, node.lossless());
    if (deg > 0) {
      Message msg = Message::of(kTagMark);
      if (deg <= 2 * delta_) {
        for (VertexId port = 0; port < deg; ++port) {
          msg.blob.push_back(port);
          collected_.push_back(
              Edge(node.id(), node.neighbor_id(port)).normalized());
        }
      } else {
        for (std::uint64_t port :
             node.rng().sample_without_replacement(deg, delta_)) {
          msg.blob.push_back(static_cast<VertexId>(port));
          collected_.push_back(
              Edge(node.id(),
                   node.neighbor_id(static_cast<VertexId>(port)))
                  .normalized());
        }
      }
      // One transmission carrying the whole marked-port list, heard by all
      // neighbors (each can check whether its own port is listed). Under
      // faults the list is rebroadcast until every neighbor acked it.
      links_[v].broadcast(node, msg);
    }
  }
  links_[v].begin_round(node);
}

bool BroadcastSparsifierProtocol::done() const {
  return nodes_initialized_ == n_ && all_idle(links_);
}

EdgeList BroadcastSparsifierProtocol::edges() const {
  EdgeList out = collected_;
  normalize_edge_list(out);
  return out;
}

DegreeSparsifierProtocol::DegreeSparsifierProtocol(VertexId num_nodes,
                                                   VertexId delta_alpha,
                                                   ReliableLinkOptions link)
    : n_(num_nodes),
      delta_alpha_(delta_alpha),
      link_opt_(link),
      initialized_(num_nodes, 0),
      collected_flag_(num_nodes, 0),
      links_(num_nodes) {}

void DegreeSparsifierProtocol::on_round(NodeContext& node) {
  const VertexId v = node.id();
  const VertexId take = std::min(node.degree(), delta_alpha_);
  if (!initialized_[v]) {
    initialized_[v] = 1;
    ++nodes_initialized_;
    lossless_ = node.lossless();
    links_[v].reset(node.degree(), link_opt_, node.lossless());
    // Ports are id-sorted, so "first Δ_α ports" is a deterministic rule —
    // a node restarting late sends the same marks it would have at round 0.
    for (VertexId port = 0; port < take; ++port) {
      links_[v].send(node, port, Message::of(kTagMark));
    }
    if (lossless_) return;  // marks arrive next round at the earliest
  }
  // Keep an edge iff a MARK arrives on a port this node itself marked.
  // Lossless this happens exactly at round 1; lossy, whenever the
  // (deduplicated) mark lands.
  for (const Incoming& in : links_[v].begin_round(node)) {
    if (in.msg.tag == kTagMark && in.port < take) {
      kept_.push_back(
          Edge(node.id(), node.neighbor_id(in.port)).normalized());
    }
  }
  if (lossless_ && !collected_flag_[v]) {
    collected_flag_[v] = 1;
    ++nodes_collected_;
  }
}

bool DegreeSparsifierProtocol::done() const {
  if (lossless_) {
    return nodes_initialized_ == n_ && nodes_collected_ == n_;
  }
  return nodes_initialized_ == n_ && all_idle(links_);
}

EdgeList DegreeSparsifierProtocol::edges() const {
  EdgeList out = kept_;
  normalize_edge_list(out);  // both endpoints record every kept edge
  return out;
}

}  // namespace matchsparse::dist
