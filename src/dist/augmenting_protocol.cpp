#include "dist/augmenting_protocol.hpp"

#include <algorithm>

#include "matching/bounded_aug.hpp"

namespace matchsparse::dist {

AugmentingProtocol::AugmentingProtocol(const Graph& g,
                                       const Matching& initial,
                                       AugmentingOptions opt)
    : g_(g),
      opt_(opt),
      mate_(g.num_vertices(), kNoVertex),
      locked_(g.num_vertices(), 0),
      prev_port_(g.num_vertices(), kNoVertex) {
  MS_CHECK_MSG(initial.is_valid(g), "invalid seed matching");
  for (VertexId v = 0; v < g.num_vertices(); ++v) mate_[v] = initial.mate(v);

  const VertexId max_cap = path_cap_for_eps(opt_.eps);
  std::size_t start = 0;
  for (VertexId ell = 1; ell <= max_cap; ell += 2) {
    caps_.push_back(ell);
    phase_start_.push_back(start);
    start += opt_.windows_per_phase * (2 * ell + 2);
  }
  plan_rounds_ = start;
}

AugmentingProtocol::Slot AugmentingProtocol::slot_of(
    std::size_t round) const {
  // Phases are laid out back to back; find the enclosing one.
  std::size_t phase = caps_.size() - 1;
  while (phase > 0 && phase_start_[phase] > round) --phase;
  const VertexId ell = caps_[phase];
  const std::size_t window_len = 2 * static_cast<std::size_t>(ell) + 2;
  const std::size_t offset = round - phase_start_[phase];
  Slot slot;
  slot.ell = ell;
  slot.window_round = offset % window_len;
  // Globally unique window index: phase base + window-within-phase.
  slot.window_idx = phase * opt_.windows_per_phase + offset / window_len;
  return slot;
}

VertexId AugmentingProtocol::port_of(VertexId v, VertexId target) const {
  const auto nbrs = g_.neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), target);
  MS_CHECK_MSG(it != nbrs.end() && *it == target,
               "port_of: target is not a neighbor");
  return static_cast<VertexId>(it - nbrs.begin());
}

void AugmentingProtocol::continue_walk(NodeContext& node,
                                       std::vector<VertexId> path,
                                       const Slot& slot) {
  const VertexId v = node.id();
  // Edges used so far = path.size() - 1; the next (unmatched) hop brings
  // the count to path.size(), which must stay within the cap.
  if (path.size() > slot.ell) return;  // token dies
  // Candidate ports: not the matched edge, endpoint not already on path.
  std::vector<VertexId> candidates;
  const VertexId mate_port =
      mate_[v] == kNoVertex ? kNoVertex : port_of(v, mate_[v]);
  for (VertexId p = 0; p < node.degree(); ++p) {
    if (p == mate_port) continue;
    const VertexId w = node.neighbor_id(p);
    if (std::find(path.begin(), path.end(), w) != path.end()) continue;
    candidates.push_back(p);
  }
  if (candidates.empty()) return;
  const VertexId p = candidates[node.rng().below(candidates.size())];
  Message msg = Message::of(kTagToken, slot.window_idx);
  msg.blob = std::move(path);
  node.send(p, msg);
}

void AugmentingProtocol::handle_token(NodeContext& node, const Incoming& in,
                                      const Slot& slot) {
  const VertexId v = node.id();
  if (in.msg.payload != slot.window_idx) return;  // stale token
  const std::vector<VertexId>& path = in.msg.blob;
  MS_DCHECK(!path.empty());
  const VertexId sender = node.neighbor_id(in.port);

  if (sender == mate_[v]) {
    // Arrived over the matched edge: v extends the alternating walk.
    if (locked_[v]) return;  // shouldn't happen (mate just locked us in
                             // spirit), but another attempt may hold v
    if (std::find(path.begin(), path.end(), v) != path.end()) return;
    locked_[v] = 1;
    prev_port_[v] = in.port;
    std::vector<VertexId> extended = path;
    extended.push_back(v);
    continue_walk(node, std::move(extended), slot);
    return;
  }

  // Arrived over an unmatched edge.
  if (locked_[v]) return;
  if (std::find(path.begin(), path.end(), v) != path.end()) return;

  if (mate_[v] == kNoVertex) {
    // Free endpoint: the alternating path `path + v` is augmenting.
    locked_[v] = 1;
    std::vector<VertexId> full = path;
    full.push_back(v);
    MS_DCHECK(full.size() % 2 == 0);
    mate_[v] = full[full.size() - 2];
    ++augmentations_;
    Message msg = Message::of(kTagAugment, slot.window_idx);
    msg.blob = std::move(full);
    node.send(in.port, msg);
    return;
  }

  // Matched internal node: lock and hand the token to the mate.
  // The matched hop adds one edge; the cap check happens at the mate's
  // continue_walk (unmatched hops) and here for the matched hop itself.
  if (path.size() + 1 > slot.ell) return;
  locked_[v] = 1;
  prev_port_[v] = in.port;
  std::vector<VertexId> extended = path;
  extended.push_back(v);
  Message msg = Message::of(kTagToken, slot.window_idx);
  msg.blob = std::move(extended);
  node.send(port_of(v, mate_[v]), msg);
}

void AugmentingProtocol::handle_augment(NodeContext& node,
                                        const Incoming& in) {
  const VertexId v = node.id();
  const std::vector<VertexId>& full = in.msg.blob;
  const auto it = std::find(full.begin(), full.end(), v);
  MS_CHECK_MSG(it != full.end(), "AUGMENT reached a node not on the path");
  const auto idx = static_cast<std::size_t>(it - full.begin());
  mate_[v] = (idx % 2 == 0) ? full[idx + 1] : full[idx - 1];
  if (idx > 0) {
    node.send(prev_port_[v], in.msg);  // keep flowing toward the initiator
  }
}

void AugmentingProtocol::on_round(NodeContext& node) {
  const VertexId v = node.id();
  round_seen_ = std::max(round_seen_, node.round() + 1);
  const Slot slot = slot_of(node.round());

  if (slot.window_round == 0) {
    // Window boundary: all locks die; stale tokens are filtered by stamp.
    locked_[v] = 0;
    prev_port_[v] = kNoVertex;
  }

  // AUGMENT first: flips must land before any token logic reads mate_.
  for (const Incoming& in : node.inbox()) {
    if (in.msg.tag == kTagAugment) handle_augment(node, in);
  }
  for (const Incoming& in : node.inbox()) {
    if (in.msg.tag == kTagToken) handle_token(node, in, slot);
  }

  // Initiations happen only at the start of a window.
  if (slot.window_round == 0 && mate_[v] == kNoVertex && !locked_[v] &&
      node.degree() > 0 && node.rng().chance(opt_.init_prob)) {
    locked_[v] = 1;
    prev_port_[v] = kNoVertex;
    continue_walk(node, {v}, slot);
  }
}

Matching AugmentingProtocol::matching() const {
  Matching m(g_.num_vertices());
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    if (mate_[v] != kNoVertex && v < mate_[v]) {
      MS_CHECK_MSG(mate_[mate_[v]] == v, "torn matching after augmenting");
      m.match(v, mate_[v]);
    }
  }
  return m;
}

}  // namespace matchsparse::dist
