#include "dist/augmenting_protocol.hpp"

#include <algorithm>

#include "matching/bounded_aug.hpp"

namespace matchsparse::dist {

AugmentingProtocol::AugmentingProtocol(const Graph& g,
                                       const Matching& initial,
                                       AugmentingOptions opt)
    : g_(g),
      opt_(opt),
      mate_(g.num_vertices(), kNoVertex),
      locked_(g.num_vertices(), 0),
      prev_port_(g.num_vertices(), kNoVertex),
      link_ready_(g.num_vertices(), 0),
      links_(g.num_vertices()) {
  MS_CHECK_MSG(initial.is_valid(g), "invalid seed matching");
  for (VertexId v = 0; v < g.num_vertices(); ++v) mate_[v] = initial.mate(v);

  const VertexId max_cap = path_cap_for_eps(opt_.eps);
  std::size_t start = 0;
  for (VertexId ell = 1; ell <= max_cap; ell += 2) {
    caps_.push_back(ell);
    phase_start_.push_back(start);
    start += opt_.windows_per_phase * (2 * ell + 2);
  }
  plan_rounds_ = start;
}

AugmentingProtocol::Slot AugmentingProtocol::slot_of(
    std::size_t round) const {
  // Phases are laid out back to back; find the enclosing one.
  std::size_t phase = caps_.size() - 1;
  while (phase > 0 && phase_start_[phase] > round) --phase;
  const VertexId ell = caps_[phase];
  const std::size_t window_len = 2 * static_cast<std::size_t>(ell) + 2;
  const std::size_t offset = round - phase_start_[phase];
  Slot slot;
  slot.ell = ell;
  slot.window_round = offset % window_len;
  // Globally unique window index: phase base + window-within-phase.
  slot.window_idx = phase * opt_.windows_per_phase + offset / window_len;
  return slot;
}

VertexId AugmentingProtocol::port_of(VertexId v, VertexId target) const {
  const auto nbrs = g_.neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), target);
  MS_CHECK_MSG(it != nbrs.end() && *it == target,
               "port_of: target is not a neighbor");
  return static_cast<VertexId>(it - nbrs.begin());
}

void AugmentingProtocol::lock(VertexId v) {
  if (!locked_[v]) {
    locked_[v] = 1;
    ++num_locked_;
  }
}

void AugmentingProtocol::unlock(VertexId v) {
  if (locked_[v]) {
    locked_[v] = 0;
    --num_locked_;
  }
}

void AugmentingProtocol::on_round(NodeContext& node) {
  round_seen_ = std::max(round_seen_, node.round() + 1);
  if (node.lossless()) {
    on_round_lossless(node);
  } else {
    lossless_ = false;
    on_round_lossy(node);
  }
}

bool AugmentingProtocol::done() const {
  if (round_seen_ < plan_rounds_) return false;
  if (lossless_) return true;
  // Hardened mode keeps running until every attempt resolved (no locked
  // trail) and every frame — including in-flight AUGMENT flips — is acked.
  if (num_locked_ != 0) return false;
  for (const ReliableLink& link : links_) {
    if (!link.idle()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Lossless mode: the original window-clocked protocol, unchanged.
// ---------------------------------------------------------------------------

void AugmentingProtocol::continue_walk(NodeContext& node,
                                       std::vector<VertexId> path,
                                       const Slot& slot) {
  const VertexId v = node.id();
  // Edges used so far = path.size() - 1; the next (unmatched) hop brings
  // the count to path.size(), which must stay within the cap.
  if (path.size() > slot.ell) return;  // token dies
  // Candidate ports: not the matched edge, endpoint not already on path.
  std::vector<VertexId> candidates;
  const VertexId mate_port =
      mate_[v] == kNoVertex ? kNoVertex : port_of(v, mate_[v]);
  for (VertexId p = 0; p < node.degree(); ++p) {
    if (p == mate_port) continue;
    const VertexId w = node.neighbor_id(p);
    if (std::find(path.begin(), path.end(), w) != path.end()) continue;
    candidates.push_back(p);
  }
  if (candidates.empty()) return;
  const VertexId p = candidates[node.rng().below(candidates.size())];
  Message msg = Message::of(kTagToken, slot.window_idx);
  msg.blob = std::move(path);
  node.send(p, msg);
}

void AugmentingProtocol::handle_token(NodeContext& node, const Incoming& in,
                                      const Slot& slot) {
  const VertexId v = node.id();
  if (in.msg.payload != slot.window_idx) return;  // stale token
  const std::vector<VertexId>& path = in.msg.blob;
  MS_DCHECK(!path.empty());
  const VertexId sender = node.neighbor_id(in.port);

  if (sender == mate_[v]) {
    // Arrived over the matched edge: v extends the alternating walk.
    if (locked_[v]) return;  // shouldn't happen (mate just locked us in
                             // spirit), but another attempt may hold v
    if (std::find(path.begin(), path.end(), v) != path.end()) return;
    locked_[v] = 1;
    prev_port_[v] = in.port;
    std::vector<VertexId> extended = path;
    extended.push_back(v);
    continue_walk(node, std::move(extended), slot);
    return;
  }

  // Arrived over an unmatched edge.
  if (locked_[v]) return;
  if (std::find(path.begin(), path.end(), v) != path.end()) return;

  if (mate_[v] == kNoVertex) {
    // Free endpoint: the alternating path `path + v` is augmenting.
    locked_[v] = 1;
    std::vector<VertexId> full = path;
    full.push_back(v);
    MS_DCHECK(full.size() % 2 == 0);
    mate_[v] = full[full.size() - 2];
    ++augmentations_;
    Message msg = Message::of(kTagAugment, slot.window_idx);
    msg.blob = std::move(full);
    node.send(in.port, msg);
    return;
  }

  // Matched internal node: lock and hand the token to the mate.
  // The matched hop adds one edge; the cap check happens at the mate's
  // continue_walk (unmatched hops) and here for the matched hop itself.
  if (path.size() + 1 > slot.ell) return;
  locked_[v] = 1;
  prev_port_[v] = in.port;
  std::vector<VertexId> extended = path;
  extended.push_back(v);
  Message msg = Message::of(kTagToken, slot.window_idx);
  msg.blob = std::move(extended);
  node.send(port_of(v, mate_[v]), msg);
}

void AugmentingProtocol::handle_augment(NodeContext& node,
                                        const Incoming& in) {
  const VertexId v = node.id();
  const std::vector<VertexId>& full = in.msg.blob;
  const auto it = std::find(full.begin(), full.end(), v);
  MS_CHECK_MSG(it != full.end(), "AUGMENT reached a node not on the path");
  const auto idx = static_cast<std::size_t>(it - full.begin());
  mate_[v] = (idx % 2 == 0) ? full[idx + 1] : full[idx - 1];
  if (idx > 0) {
    node.send(prev_port_[v], in.msg);  // keep flowing toward the initiator
  }
}

void AugmentingProtocol::on_round_lossless(NodeContext& node) {
  const VertexId v = node.id();
  const Slot slot = slot_of(node.round());

  if (slot.window_round == 0) {
    // Window boundary: all locks die; stale tokens are filtered by stamp.
    locked_[v] = 0;
    prev_port_[v] = kNoVertex;
  }

  // AUGMENT first: flips must land before any token logic reads mate_.
  for (const Incoming& in : node.inbox()) {
    if (in.msg.tag == kTagAugment) handle_augment(node, in);
  }
  for (const Incoming& in : node.inbox()) {
    if (in.msg.tag == kTagToken) handle_token(node, in, slot);
  }

  // Initiations happen only at the start of a window.
  if (slot.window_round == 0 && mate_[v] == kNoVertex && !locked_[v] &&
      node.degree() > 0 && node.rng().chance(opt_.init_prob)) {
    locked_[v] = 1;
    prev_port_[v] = kNoVertex;
    continue_walk(node, {v}, slot);
  }
}

// ---------------------------------------------------------------------------
// Hardened mode: reliable links, persistent locks, explicit REJECT/ABORT.
// ---------------------------------------------------------------------------

/// Extends the walk by one unmatched hop, or resolves a dead walk by
/// unlocking v and unwinding the trail behind it.
void AugmentingProtocol::continue_walk_lossy(NodeContext& node,
                                             std::vector<VertexId> path,
                                             VertexId ell) {
  const VertexId v = node.id();
  std::vector<VertexId> candidates;
  if (path.size() <= ell) {
    const VertexId mate_port =
        mate_[v] == kNoVertex ? kNoVertex : port_of(v, mate_[v]);
    for (VertexId p = 0; p < node.degree(); ++p) {
      if (p == mate_port) continue;
      const VertexId w = node.neighbor_id(p);
      if (std::find(path.begin(), path.end(), w) != path.end()) continue;
      candidates.push_back(p);
    }
  }
  if (candidates.empty()) {
    // Token dies here; the locked trail must not be left dangling.
    unlock(v);
    if (prev_port_[v] != kNoVertex) {
      links_[v].send(node, prev_port_[v], Message::of(kTagAbort));
      prev_port_[v] = kNoVertex;
    }
    return;
  }
  const VertexId p = candidates[node.rng().below(candidates.size())];
  Message msg = Message::of(kTagToken, ell);
  msg.blob = std::move(path);
  links_[v].send(node, p, msg);
}

void AugmentingProtocol::handle_token_lossy(NodeContext& node,
                                            const Incoming& in) {
  const VertexId v = node.id();
  const auto ell = static_cast<VertexId>(in.msg.payload);
  const std::vector<VertexId>& path = in.msg.blob;
  if (path.empty()) return;
  const VertexId sender = node.neighbor_id(in.port);
  const bool on_path =
      std::find(path.begin(), path.end(), v) != path.end();

  const auto refuse = [&] {
    links_[v].send(node, in.port, Message::of(kTagReject));
  };

  if (locked_[v] || on_path) {
    refuse();
    return;
  }

  if (sender == mate_[v]) {
    // Arrived over the matched edge: extend the alternating walk.
    lock(v);
    prev_port_[v] = in.port;
    std::vector<VertexId> extended = path;
    extended.push_back(v);
    continue_walk_lossy(node, std::move(extended), ell);
    return;
  }

  if (mate_[v] == kNoVertex) {
    // Free endpoint: flip the path. The endpoint itself needs no lock —
    // its flip is final; the trail unlocks as the AUGMENT travels back.
    std::vector<VertexId> full = path;
    full.push_back(v);
    mate_[v] = full[full.size() - 2];
    ++augmentations_;
    Message msg = Message::of(kTagAugment);
    msg.blob = std::move(full);
    links_[v].send(node, in.port, msg);
    return;
  }

  // Matched internal node: the matched hop must respect the cap too.
  if (path.size() + 1 > ell) {
    refuse();
    return;
  }
  lock(v);
  prev_port_[v] = in.port;
  std::vector<VertexId> extended = path;
  extended.push_back(v);
  Message msg = Message::of(kTagToken, ell);
  msg.blob = std::move(extended);
  links_[v].send(node, port_of(v, mate_[v]), msg);
}

void AugmentingProtocol::handle_augment_lossy(NodeContext& node,
                                              const Incoming& in) {
  const VertexId v = node.id();
  if (!locked_[v]) return;  // not on a live trail — defensively ignore
  const std::vector<VertexId>& full = in.msg.blob;
  const auto it = std::find(full.begin(), full.end(), v);
  if (it == full.end()) return;
  const auto idx = static_cast<std::size_t>(it - full.begin());
  mate_[v] = (idx % 2 == 0) ? full[idx + 1] : full[idx - 1];
  unlock(v);
  if (idx > 0 && prev_port_[v] != kNoVertex) {
    links_[v].send(node, prev_port_[v], in.msg);
  }
  prev_port_[v] = kNoVertex;
}

/// REJECT (refusal by the node the token was offered to) and ABORT (trail
/// teardown) both unwind one hop of the locked trail.
void AugmentingProtocol::handle_teardown(NodeContext& node,
                                         const Incoming& in) {
  (void)in;
  const VertexId v = node.id();
  if (!locked_[v]) return;
  unlock(v);
  if (prev_port_[v] != kNoVertex) {
    links_[v].send(node, prev_port_[v], Message::of(kTagAbort));
    prev_port_[v] = kNoVertex;
  }
}

void AugmentingProtocol::on_round_lossy(NodeContext& node) {
  const VertexId v = node.id();
  if (!link_ready_[v]) {
    link_ready_[v] = 1;
    links_[v].reset(node.degree(), opt_.link, /*lossless=*/false);
  }

  const std::vector<Incoming> delivered = links_[v].begin_round(node);
  // AUGMENT first: flips must land before any token logic reads mate_.
  for (const Incoming& in : delivered) {
    if (in.msg.tag == kTagAugment) handle_augment_lossy(node, in);
  }
  for (const Incoming& in : delivered) {
    switch (in.msg.tag) {
      case kTagToken:
        handle_token_lossy(node, in);
        break;
      case kTagReject:
      case kTagAbort:
        handle_teardown(node, in);
        break;
      default:
        break;
    }
  }

  // Initiations keep the window pacing but stop after the planned
  // schedule, so the drain phase (locks clearing, links emptying) can
  // quiesce into done().
  const Slot slot = slot_of(node.round());
  if (slot.window_round == 0 && node.round() < plan_rounds_ &&
      mate_[v] == kNoVertex && !locked_[v] && node.degree() > 0 &&
      node.rng().chance(opt_.init_prob)) {
    lock(v);
    prev_port_[v] = kNoVertex;
    continue_walk_lossy(node, {v}, slot.ell);
  }
}

Matching AugmentingProtocol::matching() const {
  Matching m(g_.num_vertices());
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    // Symmetric pairs only: mid-recovery a flip can be half-applied (one
    // endpoint processed the AUGMENT, the other not yet); those edges are
    // withheld until both sides agree, so the output is always a valid
    // matching.
    if (mate_[v] != kNoVertex && v < mate_[v] && mate_[mate_[v]] == v) {
      m.match(v, mate_[v]);
    }
  }
  return m;
}

}  // namespace matchsparse::dist
