// CONGEST-model bounded-length augmenting phases.
//
// The LOCAL-model AugmentingProtocol ships whole paths in its messages;
// this variant needs only O(log n)-bit tokens, because the vertex-locking
// discipline already encodes the path in the network: every locked node
// remembers the port toward its predecessor (for routing the AUGMENT
// back) and the port toward its successor (to know its new mate), so
// tokens carry just (window stamp, path length). Cycle avoidance falls
// out of locking — a token that walks back into its own path meets a
// locked node and dies, which only wastes the attempt.
//
// Flip bookkeeping: in an augmenting path v0 v1 v2 … vk u, nodes at odd
// positions (reached over an UNMATCHED edge while matched) pair with
// their predecessor; nodes at even positions (the initiator, and nodes
// reached over their MATCHED edge) pair with their successor; the free
// endpoint pairs with the sender. Each node knows which case it is in
// from how the token reached it, so the AUGMENT needs no payload at all.
//
// Message sizes: TOKEN = tag + 64-bit payload (window stamp and length
// packed) = 65 accounted bits; AUGMENT = tag + stamp. Both are O(log n),
// i.e. CONGEST-legal, unlike the LOCAL variant's 32·|path|-bit blobs —
// bench_distributed compares the two.
//
// Hardened (lossy-network) mode mirrors the LOCAL variant: the window
// clock is abandoned, every message rides a ReliableLink, tokens carry
// the phase cap ℓ packed next to the length (still one 64-bit word, so
// still CONGEST-sized), locks persist until the attempt resolves, and
// refusals answer REJECT so the refused trail unwinds itself backwards
// with ABORT. The role/port bookkeeping is exactly what makes this safe
// with O(1)-word messages: each token hand-off over an edge is answered
// by exactly one of {REJECT, ABORT, AUGMENT}, so a locked node's unlock
// event is unique and the AUGMENT sweep can trust its stored ports.
#pragma once

#include "dist/engine.hpp"
#include "dist/reliable_link.hpp"
#include "matching/matching.hpp"

namespace matchsparse::dist {

inline constexpr std::uint32_t kTagCongestToken = 30;
inline constexpr std::uint32_t kTagCongestAugment = 31;
inline constexpr std::uint32_t kTagCongestReject = 32;
inline constexpr std::uint32_t kTagCongestAbort = 33;

struct CongestAugmentingOptions {
  double eps = 0.34;
  std::size_t windows_per_phase = 16;
  double init_prob = 0.25;
  /// Transport options for the hardened (lossy-network) mode.
  ReliableLinkOptions link;
};

class CongestAugmentingProtocol : public Protocol {
 public:
  CongestAugmentingProtocol(const Graph& g, const Matching& initial,
                            CongestAugmentingOptions opt);

  void on_round(NodeContext& node) override;
  bool done() const override;
  const char* name() const override { return "congest_augmenting"; }

  Matching matching() const;
  std::size_t planned_rounds() const { return plan_rounds_; }
  std::size_t augmentations() const { return augmentations_; }

 private:
  /// How the in-flight attempt reached this (locked) node; decides the
  /// mate update when the AUGMENT sweeps back.
  enum class Role : std::uint8_t {
    kNone,
    kInitiator,        // pairs with successor
    kViaMatchedEdge,   // even position: pairs with successor
    kViaUnmatchedEdge, // odd position: pairs with predecessor
    kEndpoint,         // committed at accept time
  };

  struct Slot {
    VertexId ell = 0;
    std::size_t window_idx = 0;
    std::size_t window_round = 0;
  };
  Slot slot_of(std::size_t round) const;

  static std::uint64_t pack(std::size_t window_idx, VertexId length) {
    return (static_cast<std::uint64_t>(window_idx) << 16) | length;
  }
  static std::size_t unpack_window(std::uint64_t payload) {
    return static_cast<std::size_t>(payload >> 16);
  }
  static VertexId unpack_length(std::uint64_t payload) {
    return static_cast<VertexId>(payload & 0xffff);
  }
  /// Lossy tokens pack (cap, length) instead of a window stamp — the
  /// walk's cap must travel with it once round numbers stop meaning
  /// anything. Still one 64-bit word.
  static std::uint64_t pack_capped(VertexId ell, VertexId length) {
    return (static_cast<std::uint64_t>(ell) << 16) | length;
  }
  static VertexId unpack_cap(std::uint64_t payload) {
    return static_cast<VertexId>((payload >> 16) & 0xffff);
  }

  VertexId port_of(VertexId v, VertexId target) const;
  void on_round_lossless(NodeContext& node);
  void handle_token(NodeContext& node, const Incoming& in, const Slot& slot);
  void handle_augment(NodeContext& node, const Incoming& in);

  void on_round_lossy(NodeContext& node);
  void handle_token_lossy(NodeContext& node, const Incoming& in);
  void handle_augment_lossy(NodeContext& node, const Incoming& in);
  void handle_teardown(NodeContext& node, const Incoming& in);
  void lock(VertexId v, Role role);
  void unlock(VertexId v);

  const Graph& g_;
  CongestAugmentingOptions opt_;
  std::vector<VertexId> caps_;
  std::vector<std::size_t> phase_start_;
  std::size_t plan_rounds_ = 0;

  std::vector<VertexId> mate_;
  std::vector<Role> role_;
  std::vector<VertexId> prev_port_;  // toward predecessor
  std::vector<VertexId> next_port_;  // toward successor
  std::size_t round_seen_ = 0;
  std::size_t augmentations_ = 0;

  // Hardened-mode state.
  bool lossless_ = true;
  std::vector<std::uint8_t> link_ready_;
  std::vector<ReliableLink> links_;
  VertexId num_locked_ = 0;
};

}  // namespace matchsparse::dist
