#include "core/api.hpp"

#include "matching/hopcroft_karp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace matchsparse {

const char* version() { return "1.0.0"; }

namespace {

VertexId delta_for(const ApproxMatchingConfig& cfg) {
  return cfg.theoretical_delta
             ? SparsifierParams::theoretical(cfg.beta, cfg.eps).delta
             : SparsifierParams::practical(cfg.beta, cfg.eps,
                                           cfg.delta_scale)
                   .delta;
}

}  // namespace

Graph build_matching_sparsifier(const Graph& g,
                                const ApproxMatchingConfig& cfg,
                                SparsifierStats* stats) {
  if (cfg.threads == 1) {
    Rng rng(cfg.seed);
    return sparsify(g, delta_for(cfg), rng, stats);
  }
  ThreadPool& pool = default_pool();
  const std::size_t shards = cfg.threads == 0 ? pool.size() : cfg.threads;
  return sparsify_parallel(g, delta_for(cfg), cfg.seed, pool, stats, shards);
}

ApproxMatchingResult approx_maximum_matching(
    const Graph& g, const ApproxMatchingConfig& cfg) {
  MS_CHECK_MSG(cfg.eps > 0.0 && cfg.eps < 1.0, "need 0 < eps < 1");
  ApproxMatchingResult result;
  SparsifierStats stats;
  Graph g_delta;
  {
    const obs::Span span("pipeline.sparsify");
    g_delta = build_matching_sparsifier(g, cfg, &stats);
  }
  result.delta = delta_for(cfg);
  result.sparsifier_edges = g_delta.num_edges();
  result.probes = stats.probes;
  result.sparsify_seconds = stats.total_seconds;

  WallTimer timer;
  {
    const obs::Span span("pipeline.match");
    if (cfg.bipartite_fast_path && two_color(g_delta).bipartite) {
      result.matching = hopcroft_karp(g_delta, hk_phases_for_eps(cfg.eps));
    } else {
      result.matching = approx_mcm(g_delta, cfg.eps);
    }
  }
  result.match_seconds = timer.seconds();

  // Obs 2.10 density check: |E(G_Δ)| <= 4·|MCM|·Δ, using the computed
  // (1+ε)-approximate matching for |MCM| (an under-estimate of |MCM|, so
  // the published ratio is an over-estimate — conservative). Gauge < 1
  // means the bound holds with room to spare.
  const double matched = static_cast<double>(result.matching.size());
  if (matched > 0.0 && result.delta > 0) {
    obs::gauge("sparsify.edges.vs_bound")
        .set(static_cast<double>(result.sparsifier_edges) /
             (4.0 * matched * static_cast<double>(result.delta)));
  }
  return result;
}

}  // namespace matchsparse
