#include "core/api.hpp"

#include <algorithm>

#include "matching/frontier.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace matchsparse {

const char* version() { return "1.0.0"; }

namespace {

VertexId delta_for(const ApproxMatchingConfig& cfg) {
  return cfg.theoretical_delta
             ? SparsifierParams::theoretical(cfg.beta, cfg.eps).delta
             : SparsifierParams::practical(cfg.beta, cfg.eps,
                                           cfg.delta_scale)
                   .delta;
}

}  // namespace

Graph build_matching_sparsifier(const Graph& g,
                                const ApproxMatchingConfig& cfg,
                                SparsifierStats* stats) {
  if (cfg.threads == 1) {
    Rng rng(cfg.seed);
    return sparsify(g, delta_for(cfg), rng, stats);
  }
  ThreadPool& pool = default_pool();
  const std::size_t shards = cfg.threads == 0 ? pool.size() : cfg.threads;
  return sparsify_parallel(g, delta_for(cfg), cfg.seed, pool, stats, shards);
}

ApproxMatchingResult approx_maximum_matching(
    const Graph& g, const ApproxMatchingConfig& cfg, const Graph* prebuilt) {
  MS_CHECK_MSG(cfg.eps > 0.0 && cfg.eps < 1.0, "need 0 < eps < 1");
  ApproxMatchingResult result;
  SparsifierStats stats;
  Graph built;
  if (prebuilt == nullptr) {
    const obs::Span span("pipeline.sparsify");
    built = build_matching_sparsifier(g, cfg, &stats);
  }
  const Graph& g_delta = prebuilt != nullptr ? *prebuilt : built;
  result.delta = delta_for(cfg);
  result.sparsifier_edges = g_delta.num_edges();
  result.probes = stats.probes;
  result.sparsify_seconds = stats.total_seconds;

  WallTimer timer;
  {
    const obs::Span span("pipeline.match");
    if (cfg.matcher == MatcherBackend::kFrontier && cfg.bipartite_fast_path) {
      FrontierOptions fopt;
      fopt.lanes = cfg.threads;
      result.matching = frontier_mcm(g_delta, cfg.eps, fopt);
    } else if (cfg.matcher == MatcherBackend::kSerial &&
               cfg.bipartite_fast_path && two_color(g_delta).bipartite) {
      result.matching = hopcroft_karp(g_delta, hk_phases_for_eps(cfg.eps));
    } else {
      result.matching = approx_mcm(g_delta, cfg.eps);
    }
  }
  result.match_seconds = timer.seconds();

  // Obs 2.10 density check: |E(G_Δ)| <= 4·|MCM|·Δ, using the computed
  // (1+ε)-approximate matching for |MCM| (an under-estimate of |MCM|, so
  // the published ratio is an over-estimate — conservative). Gauge < 1
  // means the bound holds with room to spare.
  const double matched = static_cast<double>(result.matching.size());
  if (matched > 0.0 && result.delta > 0) {
    obs::gauge("sparsify.edges.vs_bound")
        .set(static_cast<double>(result.sparsifier_edges) /
             (4.0 * matched * static_cast<double>(result.delta)));
  }
  return result;
}

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kDegradedEps:
      return "degraded-eps";
    case RunStatus::kDegradedMaximal:
      return "degraded-maximal";
    case RunStatus::kCancelled:
      return "cancelled";
    case RunStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

namespace {

/// Greedy maximal matching with non-throwing cancellation polls, so a
/// tripped guard yields the partial matching built so far instead of
/// unwinding. Mirrors greedy_maximal_matching(g) exactly when no guard
/// trips (same CSR scan order ⇒ same output).
Matching greedy_maximal_partial(const Graph& g, bool* completed) {
  Matching m(g.num_vertices());
  *completed = true;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if ((u & 0xFF) == 0 && guard::poll()) {
      *completed = false;
      return m;
    }
    if (m.is_matched(u)) continue;
    for (VertexId v : g.neighbors(u)) {
      if (!m.is_matched(v)) {
        m.match(u, v);
        break;
      }
    }
  }
  return m;
}

void append_detail(std::string& detail, const std::string& line) {
  if (!detail.empty()) detail += "; ";
  detail += line;
}

}  // namespace

RunOutcome approx_maximum_matching_guarded(const Graph& g,
                                           const ApproxMatchingConfig& cfg,
                                           const RunLimits& limits,
                                           const Graph* prebuilt) {
  MS_CHECK_MSG(cfg.eps > 0.0 && cfg.eps < 1.0, "need 0 < eps < 1");
  MS_CHECK_MSG(limits.soft_deadline_frac > 0.0 &&
                   limits.soft_deadline_frac <= 1.0,
               "need 0 < soft_deadline_frac <= 1");
  const obs::Span span("pipeline.guarded");
  // A cancelling caller (serve CANCEL frame, daemon drain) trips the
  // guard of the ENCLOSING context, which the rung guards below shadow
  // while installed; parent-linking each rung guard propagates the stop.
  guard::RunGuard* enclosing = guard::active();
  RunOutcome outcome;
  WallTimer timer;

  // Milliseconds left of the shared attempt window (the ε rungs share it;
  // the maximal fallback gets a fresh window — total <= 2x deadline).
  const auto remaining_ms = [&]() -> double {
    if (limits.deadline_ms <= 0.0) return 0.0;  // unlimited
    return limits.deadline_ms - timer.seconds() * 1e3;
  };

  const bool can_degrade = limits.degrade != RunLimits::Degrade::kOff;
  double eps = cfg.eps;
  for (int rung = 0; rung <= limits.max_eps_retries; ++rung) {
    double attempt_ms = remaining_ms();
    if (limits.deadline_ms > 0.0 && attempt_ms <= 0.0) break;  // window spent
    if (rung == 0 && can_degrade && limits.deadline_ms > 0.0) {
      // Soft deadline: cap the full-quality attempt so the ladder keeps
      // part of the window for its coarsened retries.
      attempt_ms *= limits.soft_deadline_frac;
    }
    guard::RunGuard::Limits gl;
    gl.deadline_ms = attempt_ms;
    gl.mem_budget_bytes = limits.mem_budget_bytes;
    if (rung == 0) gl.cancel_after_polls = limits.cancel_after_polls;
    guard::RunGuard run_guard(gl);
    run_guard.set_parent(enclosing);
    try {
      ApproxMatchingConfig attempt_cfg = cfg;
      attempt_cfg.eps = eps;
      {
        const guard::ScopedGuard installed(run_guard);
        outcome.result = approx_maximum_matching(
            g, attempt_cfg, rung == 0 ? prebuilt : nullptr);
      }
      outcome.status = rung == 0 ? RunStatus::kOk : RunStatus::kDegradedEps;
      outcome.eps_effective = eps;
      outcome.guarantee = 1.0 + eps;
      outcome.size_floor =
          maximum_matching_floor(g.num_non_isolated(), cfg.beta);
      outcome.mem_peak_bytes = std::max(outcome.mem_peak_bytes,
                                        run_guard.memory().peak());
      outcome.polls += run_guard.polls();
      if (rung > 0) {
        append_detail(outcome.detail,
                      "completed with coarsened eps=" + std::to_string(eps));
      }
      return outcome;
    } catch (const guard::Interrupted& e) {
      outcome.stop_reason = e.reason();
      outcome.mem_peak_bytes = std::max(outcome.mem_peak_bytes,
                                        run_guard.memory().peak());
      outcome.polls += run_guard.polls();
      append_detail(outcome.detail, e.what());
      if (e.reason() == guard::StopReason::kCancelled) {
        // External cancellation is a request to stop, never to retry.
        outcome.status = RunStatus::kCancelled;
        outcome.result = ApproxMatchingResult{};
        outcome.result.matching = Matching(g.num_vertices());
        outcome.partial = true;
        return outcome;
      }
      if (!can_degrade) break;
      if (eps >= 0.95) break;  // ε exhausted — on to the fallback
      eps = std::min(2.0 * eps, 0.95);
      // Per-call lookup — obs::counter() is ambient since §14, so the
      // rung's degradation event lands in the calling request's registry.
      obs::counter("guard.degrade.eps").add(1);
      append_detail(outcome.detail,
                    "retrying with eps=" + std::to_string(eps));
    }
  }

  if (limits.degrade != RunLimits::Degrade::kMaximal) {
    outcome.status = RunStatus::kFailed;
    outcome.result = ApproxMatchingResult{};
    outcome.result.matching = Matching(g.num_vertices());
    outcome.partial = true;
    append_detail(outcome.detail, "degradation ladder exhausted");
    return outcome;
  }

  // Maximal fallback: O(n + m) greedy scan on the ORIGINAL graph under a
  // fresh full-deadline guard, polled (never thrown) so it can hand back
  // whatever it matched when even the scan does not fit the window.
  obs::counter("guard.degrade.maximal").add(1);
  guard::RunGuard::Limits gl;
  gl.deadline_ms = limits.deadline_ms;
  gl.mem_budget_bytes = limits.mem_budget_bytes;
  guard::RunGuard run_guard(gl);
  run_guard.set_parent(enclosing);
  bool completed = false;
  WallTimer fallback_timer;
  {
    const guard::ScopedGuard installed(run_guard);
    const obs::Span fallback_span("pipeline.fallback.maximal");
    outcome.result = ApproxMatchingResult{};
    outcome.result.matching = greedy_maximal_partial(g, &completed);
  }
  outcome.result.match_seconds = fallback_timer.seconds();
  outcome.status = RunStatus::kDegradedMaximal;
  outcome.eps_effective = 1.0;  // maximal ⇒ 2 = (1+1)-approximation
  outcome.partial = !completed;
  outcome.guarantee = completed ? 2.0 : 0.0;
  outcome.size_floor =
      completed ? maximal_matching_floor(g.num_non_isolated(), cfg.beta) : 0;
  outcome.mem_peak_bytes =
      std::max(outcome.mem_peak_bytes, run_guard.memory().peak());
  outcome.polls += run_guard.polls();
  append_detail(outcome.detail, completed
                                    ? "greedy maximal fallback completed"
                                    : "greedy maximal fallback cut short");
  return outcome;
}

}  // namespace matchsparse
