// matchsparse — public API.
//
// Implements "A Unified Sparsification Approach for Matching Problems in
// Graphs of Bounded Neighborhood Independence" (Milenković & Solomon,
// SPAA 2020). The one-line summary: on a graph with neighborhood
// independence number β, letting every vertex keep Δ = Θ((β/ε)·log(1/ε))
// random incident edges yields a (1+ε)-matching sparsifier w.h.p.; compute
// the matching there instead of on the full graph.
//
// Headline entry point: approx_maximum_matching(). The sequential path is
// Theorem 3.1 (sublinear time in the adjacency-array model); the
// distributed and dynamic applications live in dist/pipeline.hpp and
// dynamic/window_matcher.hpp and are re-exported by this header.
#pragma once

#include "dist/pipeline.hpp"
#include "dynamic/window_matcher.hpp"
#include "graph/beta.hpp"
#include "graph/graph.hpp"
#include "matching/bounded_aug.hpp"
#include "matching/matching.hpp"
#include "sparsify/pipeline.hpp"
#include "sparsify/sparsifier.hpp"

namespace matchsparse {

/// Library version string.
const char* version();

struct ApproxMatchingConfig {
  /// Neighborhood independence bound of the input. If unknown, measure it
  /// with neighborhood_independence() or use a family bound (line graphs:
  /// 2, unit-disk: 5, k-diversity: k).
  VertexId beta = 2;
  /// Target approximation: the result is a (1+eps)-approximate MCM w.h.p.
  double eps = 0.2;
  /// RNG seed; identical seeds reproduce identical outputs.
  std::uint64_t seed = 0x6d617473u;
  /// Scale on the theoretical Δ constant (20 in the paper's proof, ~2 in
  /// practice; see EXPERIMENTS.md E1 for the measured safety margin).
  double delta_scale = 2.0;
  /// Use the paper's proof constant (delta_scale is ignored).
  bool theoretical_delta = false;
  /// When the sparsifier turns out bipartite, use phase-truncated
  /// Hopcroft–Karp (the exact black box the paper cites, with a firm
  /// O(m'/ε) bound) instead of the general bounded-length matcher.
  bool bipartite_fast_path = true;
  /// Worker lanes for building G_Δ. 1 (default) keeps the legacy serial
  /// path: one RNG stream drawn vertex-by-vertex. Any other value routes
  /// through the fused parallel sparsify→CSR pipeline (sparsify_parallel)
  /// on the shared default_pool(): 0 = one lane per hardware thread,
  /// k > 1 = exactly k lanes. The parallel path samples per-vertex
  /// substreams mix64(seed, v), so its output is one deterministic
  /// function of (g, Δ, seed) for *every* threads value ≥ 2 (and 0) —
  /// but, being a different (equally distributed) drawing scheme, it is
  /// not edge-identical to the threads == 1 legacy stream.
  std::size_t threads = 1;
};

struct ApproxMatchingResult {
  Matching matching;
  VertexId delta = 0;              // marks per vertex used
  EdgeIndex sparsifier_edges = 0;  // |E(G_Δ)|
  std::uint64_t probes = 0;        // adjacency entries read to build G_Δ
  double sparsify_seconds = 0.0;   // end-to-end G_Δ construction
  double match_seconds = 0.0;
};

/// Theorem 3.1: computes a (1+eps)-approximate maximum matching in
/// O(n·(β/ε²)·log(1/ε)) time by matching on the sparsifier G_Δ. The time
/// bound is deterministic; the approximation factor holds w.h.p.
ApproxMatchingResult approx_maximum_matching(const Graph& g,
                                             const ApproxMatchingConfig& cfg);

/// Convenience: builds the sparsifier G_Δ with parameters derived from
/// (beta, eps) exactly as approx_maximum_matching would.
Graph build_matching_sparsifier(const Graph& g,
                                const ApproxMatchingConfig& cfg,
                                SparsifierStats* stats = nullptr);

}  // namespace matchsparse
