// matchsparse — public API.
//
// Implements "A Unified Sparsification Approach for Matching Problems in
// Graphs of Bounded Neighborhood Independence" (Milenković & Solomon,
// SPAA 2020). The one-line summary: on a graph with neighborhood
// independence number β, letting every vertex keep Δ = Θ((β/ε)·log(1/ε))
// random incident edges yields a (1+ε)-matching sparsifier w.h.p.; compute
// the matching there instead of on the full graph.
//
// Headline entry point: approx_maximum_matching(). The sequential path is
// Theorem 3.1 (sublinear time in the adjacency-array model); the
// distributed and dynamic applications live in dist/pipeline.hpp and
// dynamic/window_matcher.hpp and are re-exported by this header.
#pragma once

#include <string>

#include "dist/pipeline.hpp"
#include "dynamic/window_matcher.hpp"
#include "graph/beta.hpp"
#include "graph/graph.hpp"
#include "guard/guard.hpp"
#include "matching/bounded_aug.hpp"
#include "matching/matching.hpp"
#include "sparsify/pipeline.hpp"
#include "sparsify/sparsifier.hpp"

namespace matchsparse {

/// Library version string.
const char* version();

/// Which matcher runs on the sparsifier G_Δ (DESIGN.md §13).
enum class MatcherBackend {
  /// The pointer-chasing serial matchers: phase-truncated Hopcroft–Karp
  /// when the sparsifier is bipartite, the bounded-augmentation driver
  /// otherwise. The legacy default.
  kSerial,
  /// Flat level-synchronous frontier kernels over the CSR
  /// (matching/frontier.hpp): serial policy at threads == 1, thread-pool
  /// policy otherwise. Bipartite sparsifiers run to completion — exact
  /// on G_Δ, never below the truncated serial guarantee, and
  /// size-deterministic at every thread count; non-bipartite sparsifiers
  /// fall back to the bounded-augmentation driver.
  kFrontier,
};

struct ApproxMatchingConfig {
  /// Neighborhood independence bound of the input. If unknown, measure it
  /// with neighborhood_independence() or use a family bound (line graphs:
  /// 2, unit-disk: 5, k-diversity: k).
  VertexId beta = 2;
  /// Target approximation: the result is a (1+eps)-approximate MCM w.h.p.
  double eps = 0.2;
  /// RNG seed; identical seeds reproduce identical outputs.
  std::uint64_t seed = 0x6d617473u;
  /// Scale on the theoretical Δ constant (20 in the paper's proof, ~2 in
  /// practice; see EXPERIMENTS.md E1 for the measured safety margin).
  double delta_scale = 2.0;
  /// Use the paper's proof constant (delta_scale is ignored).
  bool theoretical_delta = false;
  /// When the sparsifier turns out bipartite, use phase-truncated
  /// Hopcroft–Karp (the exact black box the paper cites, with a firm
  /// O(m'/ε) bound) instead of the general bounded-length matcher.
  bool bipartite_fast_path = true;
  /// Worker lanes for building G_Δ. 1 (default) keeps the legacy serial
  /// path: one RNG stream drawn vertex-by-vertex. Any other value routes
  /// through the fused parallel sparsify→CSR pipeline (sparsify_parallel)
  /// on the shared default_pool(): 0 = one lane per hardware thread,
  /// k > 1 = exactly k lanes. The parallel path samples per-vertex
  /// substreams mix64(seed, v), so its output is one deterministic
  /// function of (g, Δ, seed) for *every* threads value ≥ 2 (and 0) —
  /// but, being a different (equally distributed) drawing scheme, it is
  /// not edge-identical to the threads == 1 legacy stream.
  std::size_t threads = 1;
  /// Matcher backend for the G_Δ matching stage; `threads` above also
  /// sets the frontier backend's lane count (1 = its deterministic
  /// serial policy, 0 = one lane per pool worker).
  MatcherBackend matcher = MatcherBackend::kSerial;
};

struct ApproxMatchingResult {
  Matching matching;
  VertexId delta = 0;              // marks per vertex used
  EdgeIndex sparsifier_edges = 0;  // |E(G_Δ)|
  std::uint64_t probes = 0;        // adjacency entries read to build G_Δ
  double sparsify_seconds = 0.0;   // end-to-end G_Δ construction
  double match_seconds = 0.0;
};

/// Theorem 3.1: computes a (1+eps)-approximate maximum matching in
/// O(n·(β/ε²)·log(1/ε)) time by matching on the sparsifier G_Δ. The time
/// bound is deterministic; the approximation factor holds w.h.p.
///
/// `prebuilt`, when non-null, must be the graph build_matching_sparsifier
/// (g, cfg) would return — the caller vouches for the identity (the serve
/// daemon's sparsifier cache keys on exactly (source, Δ, seed, scheme)).
/// The sparsify stage is then skipped and the matching stage runs on
/// *prebuilt, producing the same matching as the cold call; probes and
/// sparsify_seconds report 0 for the skipped stage.
ApproxMatchingResult approx_maximum_matching(const Graph& g,
                                             const ApproxMatchingConfig& cfg,
                                             const Graph* prebuilt = nullptr);

/// Convenience: builds the sparsifier G_Δ with parameters derived from
/// (beta, eps) exactly as approx_maximum_matching would.
Graph build_matching_sparsifier(const Graph& g,
                                const ApproxMatchingConfig& cfg,
                                SparsifierStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Guarded execution: deadlines, memory budgets, graceful degradation
// (DESIGN.md §12). approx_maximum_matching_guarded never throws on
// resource exhaustion — it walks a degradation ladder and reports what it
// achieved in a RunOutcome instead.
// ---------------------------------------------------------------------------

struct RunLimits {
  /// Hard wall-clock ceiling per attempt window, in milliseconds;
  /// 0 = unlimited. The ε-coarsening rungs share this window; the greedy
  /// fallback gets one fresh window of its own, so the guarded call
  /// returns within 2× this deadline in the worst case.
  double deadline_ms = 0.0;
  /// Fraction of the deadline granted to the full-quality first attempt
  /// when degradation is enabled; in (0, 1]. With 0.5 and a 100 ms
  /// deadline, the ε-ladder starts after 50 ms instead of burning the
  /// whole window on an attempt that was never going to finish.
  double soft_deadline_frac = 0.5;
  /// Byte cap on concurrently charged big arrays (CSR, mark buffers);
  /// 0 = unlimited. See guard::MemoryBudget.
  std::uint64_t mem_budget_bytes = 0;
  /// What to trade when a limit trips (the ladder, Thm 2.1):
  ///   kOff     — no retries: report kFailed.
  ///   kEps     — coarsen ε (halving Δ per doubling) and retry.
  ///   kMaximal — kEps, then fall back to greedy maximal matching
  ///              (2-approx when it completes; Lemma 2.2-style floor
  ///              n'/(2β+2), see maximal_matching_floor()).
  enum class Degrade { kOff, kEps, kMaximal };
  Degrade degrade = Degrade::kMaximal;
  /// Maximum ε-coarsening retries before the maximal fallback.
  int max_eps_retries = 3;
  /// Test hook, applied to the FIRST attempt only: trip a cancellation on
  /// the N-th guard poll. See guard::RunGuard::Limits.
  std::uint64_t cancel_after_polls = 0;
};

enum class RunStatus {
  kOk,               // full-quality result within limits
  kDegradedEps,      // finished after coarsening ε — guarantee = 1+ε_eff
  kDegradedMaximal,  // greedy maximal fallback — guarantee = 2
  kCancelled,        // external cancel(); result.matching may be empty
  kFailed,           // limits exhausted and degradation off/exhausted
};

const char* to_string(RunStatus status);

struct RunOutcome {
  RunStatus status = RunStatus::kOk;
  /// Which limit tripped first (kNone when status == kOk).
  guard::StopReason stop_reason = guard::StopReason::kNone;
  /// The matching and its pipeline telemetry. Always a VALID matching of
  /// g (possibly empty when cancelled early); `partial` below says
  /// whether the advertised guarantee applies.
  ApproxMatchingResult result;
  /// The ε actually achieved by the attempt that produced `result`.
  /// 1.0 for the maximal fallback (a completed maximal matching is a
  /// 2 = (1+1)-approximation).
  double eps_effective = 0.0;
  /// Multiplicative approximation guarantee of result.matching:
  /// 1+ε_eff for sparsifier runs (w.h.p.), 2 for a completed maximal
  /// fallback, 0 when partial (no guarantee).
  double guarantee = 0.0;
  /// Provable size floor for result.matching given cfg.beta (Lem 2.2 for
  /// maximum-matching runs, the n'/(2β+2) maximal floor for the
  /// fallback); 0 when partial.
  VertexId size_floor = 0;
  /// True when even the last ladder rung was cut short: result.matching
  /// is still valid but carries no approximation guarantee.
  bool partial = false;
  /// Peak concurrently charged bytes across all attempts (telemetry;
  /// see guard::MemoryBudget::peak()).
  std::uint64_t mem_peak_bytes = 0;
  /// Guard polls observed across all attempts. For a serial single-rung
  /// run this is a deterministic function of (g, cfg) — the cancellation
  /// fuzz uses it to place cancel_after_polls trip points.
  std::uint64_t polls = 0;
  /// Human-readable trail of what tripped and what the ladder did.
  std::string detail;

  bool ok() const { return status == RunStatus::kOk; }
  bool degraded() const {
    return status == RunStatus::kDegradedEps ||
           status == RunStatus::kDegradedMaximal;
  }
};

/// approx_maximum_matching under a run guard. Installs a guard::RunGuard
/// scoped to each attempt, catches guard::Interrupted, and walks the
/// degradation ladder per `limits`. Never throws for deadline/budget/
/// cancellation; invalid configuration still MS_CHECKs. With default
/// limits (no deadline, no budget) the output matching is bit-identical
/// to approx_maximum_matching(g, cfg).
///
/// Each rung guard is parent-linked to the guard active at entry, so
/// cancelling an enclosing RunContext stops the ladder at its next poll.
///
/// `prebuilt` (same contract as approx_maximum_matching) feeds ONLY the
/// full-quality first rung — coarsened retries change Δ, so they rebuild
/// from scratch. A cache-hit serve request therefore skips the build
/// stage entirely when rung 0 completes, and degrades identically to a
/// cold run when it doesn't.
RunOutcome approx_maximum_matching_guarded(const Graph& g,
                                           const ApproxMatchingConfig& cfg,
                                           const RunLimits& limits = {},
                                           const Graph* prebuilt = nullptr);

}  // namespace matchsparse
