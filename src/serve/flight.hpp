// Flight recorder — the daemon's always-on post-mortem ring
// (DESIGN.md §16).
//
// A fixed-size ring of compact per-request records, written lock-free
// at request completion and dumpable at any moment: on SIGUSR1 (the
// daemon tool), on every guard trip (ServerOptions::flight_path), and
// on demand over the wire (STATS format=2). The ring answers "what were
// the last N requests doing" after an incident without any per-request
// filesystem traffic while the server is healthy.
//
// Concurrency contract: record() is lock-free (one relaxed ticket
// fetch_add plus a bounded number of per-slot atomic stores) and safe
// from any number of session threads; dump() runs concurrently with
// writers and never blocks them. Each slot is a seqlock whose payload
// words are themselves atomics (no plain-memory races, TSan-clean): the
// writer brackets its word stores with seq = 2·ticket+1 / 2·ticket+2,
// and a reader discards any slot whose seq is not the stable published
// value for the ticket it expects — so a dump taken mid-overwrite skips
// the contested slot instead of emitting a franken-record. All slot
// atomics are seq_cst; at request-completion granularity the fence cost
// is noise, and the total order is what makes the discard check sound.
//
// Memory contract: one slot is 10 machine words (seq + 9 payload
// words), so the default 256-entry ring is 20 KiB, allocated once at
// server construction and never resized or freed mid-flight.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace matchsparse::serve {

/// One completed request. For served jobs `status`/`stop_reason` carry
/// the RunOutcome; for refused requests `error_code` carries the
/// serve::ErrorCode and status/stop_reason stay 0. `delta`/`seed`/
/// `lanes` are the sparsifier scheme key of job frames (0 otherwise).
struct FlightRecord {
  std::uint64_t serial = 0;      // server serial (jobs; 0 otherwise)
  std::uint64_t request_id = 0;  // client-chosen id, echoed in replies
  std::uint8_t frame_type = 0;   // serve::FrameType raw value
  std::uint8_t status = 0;       // core RunStatus raw value
  std::uint8_t stop_reason = 0;  // guard::StopReason raw value
  std::uint8_t cache_hit = 0;
  std::uint32_t error_code = 0;  // serve::ErrorCode when refused, else 0
  std::uint32_t delta = 0;
  std::uint64_t seed = 0;
  std::uint64_t lanes = 0;
  double queue_ms = 0.0;    // decoded-to-dispatched wait on the session
  double service_ms = 0.0;  // dispatch-to-reply-sent service time
  std::uint64_t mem_peak_bytes = 0;

  friend bool operator==(const FlightRecord&, const FlightRecord&) = default;
};

class FlightRecorder {
 public:
  /// `capacity` slots, clamped to >= 1. ~80 bytes per slot.
  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  std::size_t capacity() const { return slots_.size(); }
  /// Total records ever written (monotone; ring keeps the last
  /// min(completed, capacity) of them).
  std::uint64_t completed() const {
    return next_.load(std::memory_order_acquire);
  }

  /// Lock-free; safe from any number of threads.
  void record(const FlightRecord& r);

  /// The last <= capacity() completed records, oldest first. Slots
  /// mid-overwrite at the instant of the dump are skipped, never torn.
  std::vector<FlightRecord> dump() const;

  /// dump() as newline-delimited JSON, one record per line (the format
  /// of the SIGUSR1 / guard-trip / STATS-format-2 exports).
  std::string dump_ndjson() const;

 private:
  static constexpr std::size_t kPayloadWords = 9;

  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 never-written; 2t+1 writing;
                                        // 2t+2 published for ticket t
    std::array<std::atomic<std::uint64_t>, kPayloadWords> words{};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// Renders one record as a single-line JSON object (no trailing
/// newline); shared by dump_ndjson() and the tests.
std::string flight_record_json(const FlightRecord& r);

}  // namespace matchsparse::serve
