// serve::RetryingClient — at-most-policy, exactly-once-effect retries
// on top of serve::Client (DESIGN.md §17).
//
// A plain Client is honest but fragile: any transport failure loses the
// request, and blindly resending a MATCH that may already be executing
// would run it twice. RetryingClient closes that gap:
//
//   - every job request (SPARSIFY/MATCH/PIPELINE) is stamped with a
//     fresh nonzero idempotency token, reused verbatim across all
//     retries of that logical request — the server's dedup window turns
//     a duplicate into a replay of the one true reply, even when the
//     retry lands on a different connection while the original is still
//     executing;
//   - transport failures (reset, EOF, an expired per-operation
//     deadline) drop the connection and reconnect through the caller's
//     ConnectFn; a desynced request/reply stream is never reused;
//   - retryable refusals — kShed and kShuttingDown — back off with
//     decorrelated jitter, honoring the server's retry_after_ms hint as
//     a floor; permanent refusals (kBadConfig, kUnknownGraph, ...)
//     surface immediately via last_error();
//   - the whole loop is bounded by max_attempts and an optional
//     per-request wall deadline.
//
// Not thread-safe: one logical request at a time, like Client itself.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace matchsparse::serve {

struct RetryPolicy {
  /// Total tries per logical request (first attempt included).
  int max_attempts = 5;
  /// Decorrelated-jitter backoff: sleep ~ uniform(base, 3 * previous),
  /// capped at max. The server's retry_after_ms hint floors the draw.
  double base_backoff_ms = 5.0;
  double max_backoff_ms = 500.0;
  /// Wall-clock budget for one logical request across all attempts and
  /// backoffs; 0 = unbounded (attempts alone bound the loop).
  double deadline_ms = 0.0;
  /// Per-operation I/O deadline installed on every connection
  /// (Client::set_io_timeout_ms); 0 = fully blocking.
  double io_timeout_ms = 1000.0;
  /// Seeds the jitter and token streams — chaos runs replay exactly.
  std::uint64_t seed = 1;
};

class RetryingClient {
 public:
  /// `connect` produces a fresh connected Client (invalid on failure —
  /// counted as a failed attempt and retried with backoff).
  using ConnectFn = std::function<Client()>;

  RetryingClient(ConnectFn connect, RetryPolicy policy)
      : connect_(std::move(connect)), policy_(policy), rng_(policy.seed) {}

  /// Jobs: a zero client_token is replaced with a fresh one for the
  /// retry loop; a caller-provided nonzero token is kept (the caller
  /// owns cross-client dedup).
  std::optional<MatchReply> match(JobRequest req);
  std::optional<MatchReply> pipeline(JobRequest req);
  std::optional<SparsifyReply> sparsify(JobRequest req);
  /// LOAD is naturally idempotent (same name + same graph replaces
  /// itself), so it retries without a token.
  std::optional<LoadReply> load(const LoadRequest& req);
  std::optional<StatsReply> stats();

  /// Why the last nullopt came back: the server's refusal, or
  /// kInternal with a transport diagnostic when every attempt died on
  /// the wire.
  const ErrorReply& last_error() const { return last_error_; }

  struct Stats {
    std::uint64_t attempts = 0;    // tries issued, first attempts included
    std::uint64_t retries = 0;     // attempts beyond the first
    std::uint64_t reconnects = 0;  // fresh connections dialed
    std::uint64_t giveups = 0;     // logical requests that failed for good
  };
  const Stats& retry_stats() const { return stats_; }

  /// Tears down the current connection (the next request reconnects).
  void disconnect() { client_.reset(); }

 private:
  bool ensure_connected();
  bool retryable(ErrorCode code) const {
    return code == ErrorCode::kShed || code == ErrorCode::kShuttingDown;
  }
  /// Decorrelated-jitter sleep, floored by the server's hint.
  void backoff(double* prev_ms, double floor_ms);
  std::uint64_t fresh_token();

  /// The retry loop shared by every verb. `op` runs one attempt on a
  /// live client and returns the reply or nullopt.
  template <typename Reply, typename Op>
  std::optional<Reply> attempt_loop(Op&& op) {
    WallTimer wall;
    double prev_ms = policy_.base_backoff_ms;
    for (int attempt = 1;; ++attempt) {
      ++stats_.attempts;
      double floor_ms = 0.0;
      if (ensure_connected()) {
        std::optional<Reply> rep = op(*client_);
        if (rep.has_value()) return rep;
        if (!client_->transport_failed()) {
          last_error_ = client_->last_error();
          if (!retryable(last_error_.code)) {
            ++stats_.giveups;
            return std::nullopt;
          }
          floor_ms = last_error_.retry_after_ms;
        } else {
          last_error_ = ErrorReply{};
          last_error_.code = ErrorCode::kInternal;
          last_error_.message = std::string("transport failure: ") +
                                to_string(client_->transport_status());
          // Whatever the failure, the request/reply stream is no longer
          // trustworthy; the next attempt gets a fresh connection.
          client_.reset();
        }
      } else {
        last_error_ = ErrorReply{};
        last_error_.code = ErrorCode::kInternal;
        last_error_.message = "connect failed";
      }
      if (attempt >= policy_.max_attempts ||
          (policy_.deadline_ms > 0.0 &&
           wall.seconds() * 1e3 >= policy_.deadline_ms)) {
        ++stats_.giveups;
        return std::nullopt;
      }
      ++stats_.retries;
      backoff(&prev_ms, floor_ms);
    }
  }

  ConnectFn connect_;
  RetryPolicy policy_;
  Rng rng_;
  std::optional<Client> client_;
  ErrorReply last_error_;
  Stats stats_;
};

}  // namespace matchsparse::serve
