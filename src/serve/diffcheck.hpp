// One reference-divergence checker for every surface that promises
// "bit-identical to a solo run": the CLI's `match --repeat/--jobs`
// self-test, the daemon's test harness, and the serve_request_isolation
// matchcheck property all reduce a run to a RunSignature and compare
// with divergence() — so "identical" means the same thing everywhere
// and the exit-3 logic exists exactly once (DESIGN.md §15).
//
// A signature captures the comparable surface of a guarded run:
// terminal status, the matched edge set in canonical order, and —
// when the caller can observe them — the guard poll count and the
// per-request metrics snapshot. Polls and metrics are compared only
// when BOTH sides observed them (polls nonzero, metrics non-empty): a
// wire client cannot see a server request's registry, and comparing a
// library outcome against a reply must not flag the reply's blindness
// as a divergence.
#pragma once

#include <string>

#include "core/api.hpp"
#include "serve/protocol.hpp"

namespace matchsparse::serve {

struct RunSignature {
  std::uint8_t status = 0;  // RunStatus numeric value
  EdgeList matched;         // canonical (u < v), sorted
  std::uint64_t polls = 0;
  std::string metrics_json;
};

/// Signature of a direct library call. Pass the per-context snapshot
/// json (RunContext::metrics_snapshot().to_json()) when the caller has
/// one, empty otherwise.
RunSignature signature_of(const RunOutcome& outcome,
                          std::string metrics_json = std::string());

/// Signature of a daemon MATCH/PIPELINE reply. Replies carry no metrics
/// snapshot and no poll count comparison by default (polls is reported
/// but excluded here: a cache-hit serve run legitimately skips the
/// build-stage polls a solo run pays).
RunSignature signature_of(const MatchReply& reply);

/// "" when identical; otherwise a one-line description of the first
/// difference, suitable for stderr / a test failure message.
std::string divergence(const RunSignature& reference,
                       const RunSignature& got);

}  // namespace matchsparse::serve
