// serve::Transport — the byte-stream seam under the frame codec.
//
// Everything that moves serve-protocol bytes (the Client's rx/tx loops,
// the Server's session threads) goes through this interface instead of
// raw ::send/::recv, which buys two things at once:
//
//   1. deadlines: FdTransport implements poll-based per-operation
//      timeouts, so a stalled peer surfaces as a typed IoStatus::kTimeout
//      instead of pinning a thread in recv() forever;
//   2. fault injection: FaultTransport wraps any transport with a seeded
//      TransportFaultPlan (PR 2's FaultPlan philosophy at the socket
//      layer) — short reads/writes at arbitrary byte boundaries, EINTR-
//      style stalls, connection resets mid-frame and mid-reply, and byte
//      corruption that must die in the frame codec's poison contract.
//      The schedule is a pure function of (plan, seed), so every chaos
//      failure replays from its seed.
//
// The contract is deliberately minimal and honest about partial I/O:
// send() and recv() may move FEWER bytes than asked (exactly like the
// syscalls they wrap); callers loop. A zero-byte kOk return is never
// produced — "no progress" is always a typed status (kEof on a clean
// peer close, kTimeout on an expired deadline, kReset on a torn
// connection).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace matchsparse::serve {

enum class IoStatus : std::uint8_t {
  kOk = 0,       // >= 1 byte moved
  kEof = 1,      // orderly close by the peer (recv only)
  kTimeout = 2,  // per-operation deadline expired with no progress
  kReset = 3,    // the connection is dead (ECONNRESET/EPIPE/injected)
};

const char* to_string(IoStatus s);

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;  // meaningful only when status == kOk

  bool ok() const { return status == IoStatus::kOk; }
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Moves up to `len` bytes; may be short. Never returns kOk with
  /// zero bytes.
  virtual IoResult send(const std::uint8_t* data, std::size_t len) = 0;
  virtual IoResult recv(std::uint8_t* data, std::size_t len) = 0;

  /// Half-close: signal EOF to the peer, keep receiving.
  virtual void shutdown_write() = 0;
  /// Full teardown; valid() turns false. Idempotent.
  virtual void close() = 0;
  virtual bool valid() const = 0;

  /// Per-operation deadline in milliseconds; 0 disables (fully
  /// blocking, the legacy behavior). Applies to each send()/recv()
  /// call independently, not to a whole frame.
  virtual void set_timeout_ms(double timeout_ms) = 0;

  /// The underlying descriptor when there is one (-1 otherwise) — the
  /// protocol tests poke raw fds, and Server teardown needs the number.
  virtual int fd() const { return -1; }

  // Convenience loops over the partial-I/O primitives: move exactly
  // `len` bytes or report the first non-kOk status.
  IoStatus send_all(const std::uint8_t* data, std::size_t len);
  IoStatus recv_all(std::uint8_t* data, std::size_t len);
};

/// The production transport: a connected stream socket (unix, TCP, or
/// one end of a socketpair) with poll-based per-operation deadlines and
/// EINTR handling. Sends use MSG_NOSIGNAL so a dead peer surfaces as
/// kReset, never SIGPIPE.
class FdTransport final : public Transport {
 public:
  /// `owns_fd` = false leaves closing the descriptor to the caller
  /// (Server sessions: the reap/stop path closes after the join).
  explicit FdTransport(int fd, double timeout_ms = 0.0, bool owns_fd = true)
      : fd_(fd), timeout_ms_(timeout_ms), owns_fd_(owns_fd) {}
  ~FdTransport() override;

  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  IoResult send(const std::uint8_t* data, std::size_t len) override;
  IoResult recv(std::uint8_t* data, std::size_t len) override;
  void shutdown_write() override;
  void close() override;
  bool valid() const override { return fd_ >= 0; }
  void set_timeout_ms(double timeout_ms) override { timeout_ms_ = timeout_ms; }
  int fd() const override { return fd_; }

  /// Detaches the descriptor without closing (ownership transfer).
  int release();

 private:
  /// Blocks until `fd_` is ready for `events` or the deadline passes.
  IoStatus wait_ready(short events);

  int fd_ = -1;
  double timeout_ms_ = 0.0;
  bool owns_fd_ = true;
};

/// A seeded fault schedule. Every probability is evaluated per
/// operation from a private Rng stream, so the whole failure history of
/// a connection is a pure function of (plan, seed) and any chaos-soak
/// failure replays exactly.
struct TransportFaultPlan {
  std::uint64_t seed = 1;
  /// P(truncate this send/recv to a random shorter length) — drives the
  /// codec and the rx/tx loops through every partial-I/O boundary.
  double short_io = 0.0;
  /// P(injected stall before the operation) and its length. Long
  /// enough stalls trip the peer's poll deadline; short ones just
  /// shuffle interleavings.
  double stall = 0.0;
  double stall_ms = 1.0;
  /// P(kill the connection instead of performing this operation). Once
  /// tripped the transport is dead for good — kReset forever after,
  /// like a real torn TCP connection.
  double reset = 0.0;
  /// P(flip one bit of this send's outgoing bytes). Corruption MUST be
  /// lethal downstream: the frame codec's length-prefix poison or a
  /// payload decoder rejects, and the connection drops. (A flipped bit
  /// the codec cannot detect — inside an opaque payload field — is out
  /// of scope by design; the codec carries no checksum.)
  double corrupt = 0.0;
  /// When > 0: hard-kill the connection after exactly this many total
  /// bytes have moved (sends + recvs), deterministic to the byte —
  /// "the peer died mid-reply" as a scriptable event.
  std::uint64_t reset_after_bytes = 0;
};

/// Wraps any transport with a TransportFaultPlan. Thread-compatible
/// like its inner transport: one user at a time per direction.
class FaultTransport final : public Transport {
 public:
  FaultTransport(std::unique_ptr<Transport> inner, TransportFaultPlan plan);

  IoResult send(const std::uint8_t* data, std::size_t len) override;
  IoResult recv(std::uint8_t* data, std::size_t len) override;
  void shutdown_write() override;
  void close() override;
  bool valid() const override;
  void set_timeout_ms(double timeout_ms) override;
  int fd() const override;

  /// Total faults injected so far, for test assertions.
  struct Injected {
    std::uint64_t shorts = 0;
    std::uint64_t stalls = 0;
    std::uint64_t resets = 0;
    std::uint64_t corruptions = 0;
  };
  const Injected& injected() const { return injected_; }

 private:
  /// Rolls the pre-operation dice shared by send and recv; true when
  /// the operation must die with *dead (kReset) instead of running.
  bool pre_op(IoResult* dead);
  void kill();

  std::unique_ptr<Transport> inner_;
  TransportFaultPlan plan_;
  Rng rng_;
  std::uint64_t bytes_moved_ = 0;
  bool dead_ = false;
  Injected injected_;
};

/// In-memory loopback for single-threaded codec tests: bytes sent
/// appear on the same transport's recv side, FIFO. recv on an empty
/// buffer reports kTimeout (there is no peer to wait for).
class BufferTransport final : public Transport {
 public:
  IoResult send(const std::uint8_t* data, std::size_t len) override;
  IoResult recv(std::uint8_t* data, std::size_t len) override;
  void shutdown_write() override { eof_ = true; }
  void close() override { closed_ = true; }
  bool valid() const override { return !closed_; }
  void set_timeout_ms(double) override {}

  std::size_t pending() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool eof_ = false;
  bool closed_ = false;
};

}  // namespace matchsparse::serve
