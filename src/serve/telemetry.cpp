#include "serve/telemetry.hpp"

#include <cmath>
#include <cstdio>
#include <string_view>

namespace matchsparse::serve {

namespace {

/// Slot index of a frame tag: request types in declaration order, the
/// catch-all last (reply tags and unknown bytes land there too).
std::size_t frame_slot(FrameType t) {
  switch (t) {
    case FrameType::kLoad:
      return 0;
    case FrameType::kSparsify:
      return 1;
    case FrameType::kMatch:
      return 2;
    case FrameType::kPipeline:
      return 3;
    case FrameType::kStats:
      return 4;
    case FrameType::kEvict:
      return 5;
    case FrameType::kShutdown:
      return 6;
    case FrameType::kCancel:
      return 7;
    case FrameType::kError:
      break;
  }
  return 8;
}

const char* frame_slot_name(std::size_t slot) {
  static constexpr const char* kNames[] = {
      "load",  "sparsify", "match",  "pipeline", "stats",
      "evict", "shutdown", "cancel", "unknown"};
  return kNames[slot];
}

/// Prometheus metric-name charset: [a-zA-Z0-9_:], no leading digit.
/// Dotted registry names sanitize '.' (and '-') to '_'.
std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // The exposition format spells these out (unlike JSON).
    out += std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_help_type(std::string& out, const std::string& metric,
                      std::string_view help, const char* type) {
  out += "# HELP ";
  out += metric;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += metric;
  out += ' ';
  out += type;
  out += '\n';
}

void append_counter(std::string& out, const std::string& metric,
                    std::string_view help, std::uint64_t value) {
  append_help_type(out, metric, help, "counter");
  out += metric;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void append_gauge(std::string& out, const std::string& metric,
                  std::string_view help, double value) {
  append_help_type(out, metric, help, "gauge");
  out += metric;
  out += ' ';
  append_number(out, value);
  out += '\n';
}

/// `{frame="match",quantile="0.5"}` (either label optional; "" when
/// neither is set).
std::string label_set(std::string_view frame, const char* quantile) {
  if (frame.empty() && quantile == nullptr) return "";
  std::string out = "{";
  if (!frame.empty()) {
    out += "frame=\"";
    out += frame;
    out += '"';
  }
  if (quantile != nullptr) {
    if (!frame.empty()) out += ',';
    out += "quantile=\"";
    out += quantile;
    out += '"';
  }
  out += '}';
  return out;
}

/// Splits a registry name into its exposition family and optional
/// frame label: the per-frame serving families fold their last segment
/// into frame="..."; everything else is its own family.
void family_of(const std::string& name, std::string* family,
               std::string* frame) {
  static constexpr std::string_view kPerFrame[] = {"serve.queue_ms.",
                                                   "serve.service_ms."};
  for (const std::string_view prefix : kPerFrame) {
    if (name.size() > prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix) {
      *family = name.substr(0, prefix.size() - 1);
      *frame = name.substr(prefix.size());
      return;
    }
  }
  *family = name;
  frame->clear();
}

std::string_view family_help(std::string_view family) {
  if (family == "serve.queue_ms") {
    return "Frame queue wait in ms (bytes arrived to dispatched), per "
           "frame type.";
  }
  if (family == "serve.service_ms") {
    return "Frame service time in ms (dispatched to reply sent), per "
           "frame type.";
  }
  return "matchsparse registry instrument.";
}

}  // namespace

ServeTelemetry::ServeTelemetry(std::size_t flight_capacity, bool enabled)
    : enabled_(enabled), flight_(flight_capacity) {
  for (std::size_t slot = 0; slot < kFrameSlots; ++slot) {
    const std::string name = frame_slot_name(slot);
    frames_[slot].queue = &registry_.bucket_histogram("serve.queue_ms." + name);
    frames_[slot].service =
        &registry_.bucket_histogram("serve.service_ms." + name);
  }
}

void ServeTelemetry::observe_frame(FrameType type, double queue_ms,
                                   double service_ms) {
  if (!enabled_) return;
  const FrameInstruments& f = frames_[frame_slot(type)];
  f.queue->observe(queue_ms);
  f.service->observe(service_ms);
}

void ServeTelemetry::count_outcome(RunStatus status) {
  if (!enabled_) return;
  registry_.counter(std::string("serve.outcome.") + to_string(status)).add();
}

void ServeTelemetry::count_refusal(ErrorCode code) {
  if (!enabled_) return;
  registry_.counter(std::string("serve.refused.") + to_string(code)).add();
}

void ServeTelemetry::count_cache(bool hit) {
  if (!enabled_) return;
  registry_.counter(hit ? "serve.match.cache_hit" : "serve.match.cache_miss")
      .add();
}

std::string ServeTelemetry::prometheus(const ServerCounters& counters,
                                       const GraphCache::Stats& cache,
                                       bool shutting_down) const {
  std::string out;
  out.reserve(1u << 12);

  append_counter(out, "matchsparse_serve_connections_total",
                 "Connections accepted over all listeners.",
                 counters.connections);
  append_counter(out, "matchsparse_serve_requests_total",
                 "Frames dispatched, all types.", counters.requests);
  append_counter(out, "matchsparse_serve_errors_total", "Error replies sent.",
                 counters.errors);
  append_counter(out, "matchsparse_serve_shed_total",
                 "Jobs refused at the inflight cap.", counters.shed);
  append_counter(out, "matchsparse_serve_budget_clamped_total",
                 "Job memory budgets clamped to the unpromised remainder.",
                 counters.budget_clamped);
  append_counter(out, "matchsparse_serve_tripped_builds_total",
                 "Sparsifier builds stopped by their guard.",
                 counters.tripped_builds);
  append_counter(out, "matchsparse_serve_cancels_delivered_total",
                 "CANCEL frames that found their target in flight.",
                 counters.cancels_delivered);
  append_counter(out, "matchsparse_serve_jobs_executed_total",
                 "Jobs actually executed (admitted, not deduplicated).",
                 counters.jobs_executed);
  append_counter(out, "matchsparse_serve_dedup_replays_total",
                 "Retried idempotency tokens answered from the dedup window.",
                 counters.dedup_replays);
  append_counter(out, "matchsparse_serve_dedup_waits_total",
                 "Retries that waited out a still-running original.",
                 counters.dedup_waits);
  append_counter(out, "matchsparse_serve_sessions_reaped_total",
                 "Sessions dropped by the idle/write deadline watchdogs.",
                 counters.sessions_reaped);
  append_gauge(out, "matchsparse_serve_inflight", "Jobs currently running.",
               counters.inflight);
  append_gauge(out, "matchsparse_serve_shutting_down",
               "1 while the server is draining.", shutting_down ? 1.0 : 0.0);

  append_counter(out, "matchsparse_cache_hits_total",
                 "Graph/sparsifier cache hits.", cache.hits);
  append_counter(out, "matchsparse_cache_misses_total",
                 "Graph/sparsifier cache misses.", cache.misses);
  append_counter(out, "matchsparse_cache_evictions_total",
                 "Cache entries evicted for space.", cache.evictions);
  append_counter(out, "matchsparse_cache_refused_total",
                 "Entries larger than the whole cache cap.", cache.refused);
  append_gauge(out, "matchsparse_cache_bytes_used", "Resident cached bytes.",
               static_cast<double>(cache.bytes_used));
  append_gauge(out, "matchsparse_cache_bytes_cap", "Cache byte capacity.",
               static_cast<double>(cache.bytes_cap));
  append_gauge(out, "matchsparse_cache_graphs", "Cached source graphs.",
               cache.graphs);
  append_gauge(out, "matchsparse_cache_sparsifiers", "Cached sparsifiers.",
               cache.sparsifiers);

  append_counter(out, "matchsparse_flight_completed_total",
                 "Requests written to the flight-recorder ring.",
                 flight_.completed());
  append_gauge(out, "matchsparse_flight_capacity",
               "Flight-recorder ring slots.",
               static_cast<double>(flight_.capacity()));

  // Registry instruments. The snapshot is sorted by name and the
  // family transform is prefix-preserving, so one family's series are
  // adjacent and HELP/TYPE is emitted exactly once per family.
  const obs::MetricsSnapshot snap = registry_.snapshot();
  std::string open_family;
  for (const obs::MetricValue& m : snap.metrics) {
    std::string family;
    std::string frame;
    family_of(m.name, &family, &frame);
    std::string metric = "matchsparse_" + sanitize(family);
    // Counters carry the conventional _total suffix (not doubled when
    // the registry name already ends in ".total").
    if (m.kind == obs::MetricKind::kCounter &&
        !(metric.size() >= 6 &&
          metric.compare(metric.size() - 6, 6, "_total") == 0)) {
      metric += "_total";
    }
    if (metric != open_family) {
      const char* type = m.kind == obs::MetricKind::kCounter  ? "counter"
                         : m.kind == obs::MetricKind::kGauge ? "gauge"
                                                             : "summary";
      append_help_type(out, metric, family_help(family), type);
      open_family = metric;
    }
    switch (m.kind) {
      case obs::MetricKind::kCounter:
        out += metric + label_set(frame, nullptr) + ' ';
        out += std::to_string(m.count);
        out += '\n';
        break;
      case obs::MetricKind::kGauge:
        out += metric + label_set(frame, nullptr) + ' ';
        append_number(out, m.value);
        out += '\n';
        break;
      case obs::MetricKind::kHistogram:
      case obs::MetricKind::kBucketHistogram: {
        if (m.kind == obs::MetricKind::kBucketHistogram) {
          const struct {
            const char* q;
            double v;
          } quantiles[] = {{"0.5", m.p50},
                           {"0.9", m.p90},
                           {"0.95", m.p95},
                           {"0.99", m.p99}};
          for (const auto& [q, v] : quantiles) {
            out += metric + label_set(frame, q) + ' ';
            append_number(out, v);
            out += '\n';
          }
        }
        out += metric + "_sum" + label_set(frame, nullptr) + ' ';
        append_number(out, m.value);
        out += '\n';
        out += metric + "_count" + label_set(frame, nullptr) + ' ';
        out += std::to_string(m.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace matchsparse::serve
