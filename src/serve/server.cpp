#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <utility>

#include "guard/context.hpp"
#include "util/timer.hpp"

namespace matchsparse::serve {

namespace {

ApproxMatchingConfig config_for(const JobRequest& req) {
  ApproxMatchingConfig cfg;
  cfg.beta = req.beta;
  cfg.eps = req.eps;
  cfg.seed = req.seed;
  cfg.threads = static_cast<std::size_t>(req.threads);
  cfg.matcher =
      req.matcher == 1 ? MatcherBackend::kFrontier : MatcherBackend::kSerial;
  return cfg;
}

RunLimits limits_for(const JobRequest& req, std::uint64_t budget) {
  RunLimits limits;
  limits.deadline_ms = req.deadline_ms;
  limits.mem_budget_bytes = budget;
  limits.degrade = static_cast<RunLimits::Degrade>(req.degrade);
  limits.cancel_after_polls = req.cancel_after_polls;
  return limits;
}

/// Δ of a wire job — the JobRequest carries no delta_scale/theoretical
/// knobs, so the daemon always uses the default practical constant. This
/// is also the sparsifier cache-key Δ, so key and build always agree.
VertexId delta_for(const JobRequest& req) {
  return SparsifierParams::practical(req.beta, req.eps, 2.0).delta;
}

SparsifierKey key_of(const JobRequest& req, VertexId delta) {
  SparsifierKey key;
  key.source = req.source;
  key.delta = delta;
  key.seed = req.seed;
  key.lanes = req.threads;
  return key;
}

void append_json(std::string& out, const char* key, std::uint64_t value,
                 bool first = false) {
  if (!first) out += ",";
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_bytes),
      telemetry_plane_(opts_.flight_capacity, opts_.telemetry) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = what + ": " + std::strerror(errno);
    }
    for (const int fd : listen_fds_) ::close(fd);
    listen_fds_.clear();
    return false;
  };

  if (!opts_.socket_path.empty()) {
    sockaddr_un addr{};
    if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return false;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return fail("socket(AF_UNIX)");
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
                opts_.socket_path.size() + 1);
    ::unlink(opts_.socket_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return fail("bind(" + opts_.socket_path + ")");
    }
    if (::listen(fd, 64) != 0) {
      ::close(fd);
      return fail("listen(" + opts_.socket_path + ")");
    }
    listen_fds_.push_back(fd);
  }

  if (opts_.tcp_port >= 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return fail("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return fail("bind(127.0.0.1:" + std::to_string(opts_.tcp_port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ::close(fd);
      return fail("getsockname");
    }
    if (::listen(fd, 64) != 0) {
      ::close(fd);
      return fail("listen(tcp)");
    }
    bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    listen_fds_.push_back(fd);
  }

  accept_threads_.reserve(listen_fds_.size());
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
  return true;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return shutting_down(); });
}

void Server::begin_drain() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (auto& [serial, ctx] : inflight_) ctx->cancel();
  }
}

void Server::notify_stop() {
  {
    // Pairs with the cv wait's predicate re-check so the wakeup is not
    // lost between its predicate evaluation and its sleep.
    std::lock_guard<std::mutex> lock(stop_mu_);
  }
  stop_cv_.notify_all();
}

void Server::stop() {
  begin_drain();
  notify_stop();
  // One thread runs the teardown; a concurrent stop() (say the
  // destructor racing an explicit stop on another thread) blocks here
  // until the joins finish rather than returning into ~Server while
  // members are still in use.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (stopped_) return;
  for (const int fd : listen_fds_) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  accept_threads_.clear();
  if (!opts_.socket_path.empty()) ::unlink(opts_.socket_path.c_str());

  std::vector<SessionSlot> slots;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    slots.swap(sessions_);
  }
  for (SessionSlot& s : slots) {
    // Unblock a session parked in recv(); its fd stays open (and its
    // number un-reusable) until after the join, so this never touches a
    // recycled descriptor.
    if (!s.done->load(std::memory_order_acquire)) {
      ::shutdown(s.fd, SHUT_RDWR);
    }
    if (s.thread.joinable()) s.thread.join();
    ::close(s.fd);
  }
  stopped_ = true;
}

int Server::connect_in_process() {
  if (shutting_down()) return -1;
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return -1;
  if (!spawn_session(sv[0])) {  // spawn closed sv[0] when refusing
    ::close(sv[1]);
    return -1;
  }
  return sv[1];
}

bool Server::spawn_session(int fd) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (shutting_down()) {
    ::close(fd);
    return false;
  }
  reap_finished_locked();
  connections_.fetch_add(1, std::memory_order_relaxed);
  SessionSlot slot;
  slot.fd = fd;
  slot.done = std::make_shared<std::atomic<bool>>(false);
  auto done = slot.done;
  slot.thread = std::thread([this, fd, done] {
    session(fd);
    done->store(true, std::memory_order_release);
  });
  sessions_.push_back(std::move(slot));
  return true;
}

void Server::reap_finished_locked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      ::close(it->fd);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    spawn_session(fd);  // closes fd itself when draining
  }
}

void Server::session(int fd) {
  // The session transport never owns the descriptor: stop()'s teardown
  // closes it after the join, and ownership there keeps the fd number
  // un-reusable while a parked recv may still reference it.
  std::unique_ptr<Transport> transport =
      std::make_unique<FdTransport>(fd, 0.0, /*owns_fd=*/false);
  if (opts_.transport_wrapper) {
    transport = opts_.transport_wrapper(std::move(transport));
  }
  Transport& t = *transport;
  std::vector<std::uint8_t> buf(1u << 16);
  FrameDecoder decoder;
  bool alive = true;
  // Stamped when a recv() batch lands: a frame's queue wait is the time
  // its bytes sat on this session before dispatch, so pipelined frames
  // accumulate the service time of everything ahead of them.
  auto batch_arrived = std::chrono::steady_clock::now();
  while (alive) {
    Frame frame;
    FrameDecoder::Status status = FrameDecoder::Status::kNeedMore;
    while (alive &&
           (status = decoder.next(&frame)) == FrameDecoder::Status::kFrame) {
      alive = handle_frame(t, frame, ms_since(batch_arrived));
    }
    if (!alive) break;
    if (status == FrameDecoder::Status::kError) {
      // The framing itself is broken: report once (request id 0 — the
      // id can no longer be trusted) and drop the connection.
      send_error(t, 0, ErrorCode::kBadFrame, decoder.error());
      break;
    }
    // The idle deadline IS the reaper: a peer that goes quiet for the
    // window loses its session thread instead of pinning it.
    t.set_timeout_ms(opts_.session_idle_timeout_ms);
    const IoResult r = t.recv(buf.data(), buf.size());
    if (!r.ok()) {
      if (r.status == IoStatus::kTimeout) {
        sessions_reaped_.fetch_add(1, std::memory_order_relaxed);
      }
      break;  // peer closed / stalled out (or stop() shut us down)
    }
    batch_arrived = std::chrono::steady_clock::now();
    decoder.feed(buf.data(), r.bytes);
  }
  // EOF to the peer; the fd itself is closed at reap/stop time.
  ::shutdown(fd, SHUT_RDWR);
}

bool Server::send_frame(Transport& t, const Frame& f) {
  // Per-send write deadline: a peer that stops draining its socket
  // mid-reply is reaped, not waited on forever.
  t.set_timeout_ms(opts_.session_write_timeout_ms);
  const std::vector<std::uint8_t> wire = encode_frame(f);
  const IoStatus st = t.send_all(wire.data(), wire.size());
  if (st == IoStatus::kTimeout) {
    sessions_reaped_.fetch_add(1, std::memory_order_relaxed);
  }
  return st == IoStatus::kOk;
}

bool Server::send_error(Transport& t, std::uint64_t id, ErrorCode code,
                        const std::string& message, double retry_after_ms) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  telemetry_plane_.count_refusal(code);
  ErrorReply err;
  err.code = code;
  err.message = message;
  err.retry_after_ms = retry_after_ms;
  return send_frame(t, encode_error(err, id));
}

bool Server::handle_frame(Transport& t, const Frame& f, double queue_ms) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const auto dispatched = std::chrono::steady_clock::now();
  bool ok;
  switch (static_cast<FrameType>(f.type)) {
    case FrameType::kLoad:
      ok = handle_load(t, f);
      break;
    case FrameType::kSparsify:
    case FrameType::kMatch:
    case FrameType::kPipeline:
      ok = handle_job(t, f, queue_ms);
      break;
    case FrameType::kStats:
      ok = handle_stats(t, f);
      break;
    case FrameType::kEvict:
      ok = handle_evict(t, f);
      break;
    case FrameType::kCancel:
      ok = handle_cancel(t, f);
      break;
    case FrameType::kShutdown:
      ok = handle_shutdown(t, f);
      break;
    default:
      ok = send_error(t, f.request_id, ErrorCode::kBadFrame,
                      "unknown frame type " + std::to_string(f.type));
      break;
  }
  telemetry_plane_.observe_frame(static_cast<FrameType>(f.type), queue_ms,
                                 ms_since(dispatched));
  return ok;
}

bool Server::handle_load(Transport& t, const Frame& f) {
  auto req = decode_load({f.payload.data(), f.payload.size()});
  if (!req) {
    return send_error(t, f.request_id, ErrorCode::kBadFrame,
                      "malformed LOAD payload");
  }
  if (shutting_down()) {
    return send_error(t, f.request_id, ErrorCode::kShuttingDown,
                      "server is draining");
  }
  if (req->source.empty()) {
    return send_error(t, f.request_id, ErrorCode::kBadFrame,
                      "empty source name");
  }
  if (req->n > opts_.max_vertices || req->edges.size() > opts_.max_edges) {
    return send_error(t, f.request_id, ErrorCode::kTooLarge,
                      "graph above the configured LOAD caps");
  }
  // Messy client lists are normalized (self-loops and duplicates
  // dropped, canonical order) rather than MS_CHECK-aborting the daemon;
  // out-of-range endpoints stay a hard reject.
  normalize_edge_list(req->edges);
  for (const Edge& e : req->edges) {
    if (e.u >= req->n || e.v >= req->n) {
      return send_error(t, f.request_id, ErrorCode::kBadFrame,
                        "edge endpoint out of range");
    }
  }
  Graph g = Graph::from_edges(req->n, req->edges);
  LoadReply rep;
  rep.n = g.num_vertices();
  rep.m = g.num_edges();
  bool replaced = false;
  cache_.put_graph(req->source, std::move(g), &rep.bytes_charged, &replaced);
  rep.replaced = replaced ? 1 : 0;
  return send_frame(t, encode_reply(FrameType::kLoad, rep, f.request_id));
}

bool Server::handle_job(Transport& t, const Frame& f, double queue_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  FlightRecord rec;
  rec.request_id = f.request_id;
  rec.frame_type = f.type;
  const bool ok = handle_job_impl(t, f, &rec);
  rec.queue_ms = queue_ms;
  rec.service_ms = ms_since(t0);
  telemetry_plane_.record_flight(rec);
  maybe_dump_flight(rec);
  return ok;
}

std::shared_ptr<Server::TokenEntry> Server::claim_token(std::uint64_t token,
                                                        bool* owner) {
  std::lock_guard<std::mutex> lock(dedup_mu_);
  auto& slot = dedup_[token];
  if (slot == nullptr) {
    slot = std::make_shared<TokenEntry>();
    *owner = true;
  } else {
    *owner = false;
  }
  return slot;
}

void Server::complete_token(std::uint64_t token,
                            const std::shared_ptr<TokenEntry>& entry,
                            const Frame& reply_frame) {
  std::vector<std::shared_ptr<TokenEntry>> evicted;
  {
    std::lock_guard<std::mutex> lock(dedup_mu_);
    entry->reply = reply_frame;
    entry->state = TokenEntry::State::kDone;
    dedup_lru_.push_back(token);
    while (dedup_lru_.size() > opts_.dedup_window) {
      const std::uint64_t old = dedup_lru_.front();
      dedup_lru_.pop_front();
      const auto it = dedup_.find(old);
      if (it != dedup_.end()) {
        evicted.push_back(std::move(it->second));  // frame freed outside
                                                   // the lock
        dedup_.erase(it);
      }
    }
  }
  entry->cv.notify_all();
}

void Server::abort_token(std::uint64_t token,
                         const std::shared_ptr<TokenEntry>& entry) {
  {
    std::lock_guard<std::mutex> lock(dedup_mu_);
    entry->state = TokenEntry::State::kAborted;
    // Gone from the map right away: the NEXT arrival of this token
    // starts a fresh attempt instead of replaying a refusal.
    const auto it = dedup_.find(token);
    if (it != dedup_.end() && it->second == entry) dedup_.erase(it);
  }
  entry->cv.notify_all();
}

bool Server::serve_token_entry(Transport& t, const Frame& f,
                               const std::shared_ptr<TokenEntry>& entry,
                               FlightRecord* rec) {
  std::unique_lock<std::mutex> lock(dedup_mu_);
  if (entry->state == TokenEntry::State::kRunning) {
    // The retry overtook its original (it landed on a fresh connection
    // while the first attempt is still executing): wait for that single
    // execution to finish rather than start a second one. The tick
    // keeps the wait honest about server drain.
    dedup_waits_.fetch_add(1, std::memory_order_relaxed);
    while (entry->state == TokenEntry::State::kRunning && !shutting_down()) {
      entry->cv.wait_for(lock, std::chrono::milliseconds(10));
    }
  }
  if (entry->state == TokenEntry::State::kDone) {
    Frame replay = entry->reply;
    lock.unlock();
    dedup_replays_.fetch_add(1, std::memory_order_relaxed);
    // The original reply, re-stamped with the retry's request id so the
    // client pairs it; everything else byte-identical.
    replay.request_id = f.request_id;
    if (replay.type == static_cast<std::uint8_t>(FrameType::kError)) {
      rec->error_code = static_cast<std::uint32_t>(ErrorCode::kTripped);
    }
    rec->cache_hit = 1;  // served without executing anything
    return send_frame(t, replay);
  }
  const bool draining =
      entry->state == TokenEntry::State::kRunning;  // left by drain check
  lock.unlock();
  if (draining) {
    rec->error_code = static_cast<std::uint32_t>(ErrorCode::kShuttingDown);
    return send_error(t, f.request_id, ErrorCode::kShuttingDown,
                      "server is draining");
  }
  // kAborted: the original attempt was refused before executing and the
  // token is already out of the window — tell this retry to try again,
  // the same way a shed request is told.
  rec->error_code = static_cast<std::uint32_t>(ErrorCode::kShed);
  return send_error(t, f.request_id, ErrorCode::kShed,
                    "original attempt was refused; retry",
                    opts_.shed_retry_after_ms);
}

bool Server::handle_job_impl(Transport& t, const Frame& f, FlightRecord* rec) {
  const auto req = decode_job({f.payload.data(), f.payload.size()});
  if (!req) {
    rec->error_code = static_cast<std::uint32_t>(ErrorCode::kBadFrame);
    return send_error(t, f.request_id, ErrorCode::kBadFrame,
                      "malformed job payload");
  }
  rec->seed = req->seed;
  rec->lanes = req->threads;

  // Idempotency-token claim comes before everything else that can vary
  // between attempts (drain state, cache contents, the inflight cap):
  // a retried token must rendezvous with its original no matter how the
  // server has moved on since the first attempt.
  std::shared_ptr<TokenEntry> entry;
  if (req->client_token != 0 && opts_.dedup_window > 0) {
    bool owner = false;
    entry = claim_token(req->client_token, &owner);
    if (!owner) return serve_token_entry(t, f, entry, rec);
  }
  // Every refusal is a flight record too — the ring answers "why did
  // that request get nothing back" as well as "how slow was it". A
  // refusal before execution also aborts the token entry: retries
  // re-attempt instead of replaying a refusal that may not recur.
  const auto refuse = [&](ErrorCode code, const std::string& message,
                          double retry_after_ms = 0.0) {
    if (entry != nullptr) abort_token(req->client_token, entry);
    rec->error_code = static_cast<std::uint32_t>(code);
    return send_error(t, f.request_id, code, message, retry_after_ms);
  };
  if (shutting_down()) {
    return refuse(ErrorCode::kShuttingDown, "server is draining");
  }
  if (req->beta < 1) {
    return refuse(ErrorCode::kBadConfig, "need beta >= 1");
  }
  if (!(req->eps > 0.0 && req->eps < 1.0)) {
    return refuse(ErrorCode::kBadConfig, "need 0 < eps < 1");
  }
  if (req->degrade > 2) {
    return refuse(ErrorCode::kBadConfig, "unknown degrade mode");
  }
  if (req->matcher > 1) {
    return refuse(ErrorCode::kBadConfig, "unknown matcher backend");
  }
  // The lane count sizes per-lane working arrays in the parallel
  // backends; an unchecked u64 from the wire would let one frame
  // allocate the daemon to death before any memory budget is polled.
  if (req->threads > opts_.max_job_threads) {
    return refuse(ErrorCode::kBadConfig,
                  "threads above the server cap of " +
                      std::to_string(opts_.max_job_threads));
  }
  // The Δ formula MS_CHECKs its β/ε domain, so the scheme key is only
  // computable for a validated config; refusals above record Δ = 0.
  rec->delta = delta_for(*req);
  const auto graph = cache_.get_graph(req->source);
  if (graph == nullptr) {
    return refuse(ErrorCode::kUnknownGraph,
                  "no graph loaded as '" + req->source + "'");
  }

  // Admission: the inflight cap sheds immediately and cheaply...
  if (opts_.max_inflight > 0) {
    std::uint32_t cur = inflight_count_.load(std::memory_order_relaxed);
    bool admitted = false;
    while (cur < opts_.max_inflight) {
      if (inflight_count_.compare_exchange_weak(cur, cur + 1,
                                                std::memory_order_relaxed)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return refuse(ErrorCode::kShed, "inflight cap reached",
                    opts_.shed_retry_after_ms);
    }
  } else {
    inflight_count_.fetch_add(1, std::memory_order_relaxed);
  }
  // ...while budget over-commitment sheds through the degradation
  // ladder: the clamped run trips kBudget and degrades instead of the
  // server overcommitting RAM.
  const std::uint64_t granted = grant_budget(req->mem_budget_bytes);

  const std::uint64_t serial =
      next_serial_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec->serial = serial;
  jobs_executed_.fetch_add(1, std::memory_order_relaxed);
  guard::RunContext ctx("serve.req-" + std::to_string(serial));
  ctx.set_publish_on_destroy(opts_.publish_request_metrics);
  if (!opts_.trace_prefix.empty()) ctx.tracer().set_enabled(true);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_[serial] = &ctx;
    // begin_drain()'s cancel sweep may have run between the
    // shutting_down() check above and this insert; re-check under the
    // sweep's own lock so a late registrant is cancelled, not missed —
    // the SHUTDOWN ack's drain-before-ack contract depends on it.
    if (shutting_down()) ctx.cancel();
  }

  // From here on the job EXECUTES, and its outcome — success or a
  // served error like kTripped — is the token's outcome: the reply
  // frame is published to the dedup window BEFORE the send, so a
  // connection torn mid-reply replays the exact same bytes on retry
  // instead of executing twice.
  Frame out;
  {
    const guard::ScopedContext scope(ctx);
    const auto type = static_cast<FrameType>(f.type);
    if (type == FrameType::kSparsify) {
      SparsifyReply rep;
      ErrorReply err;
      if (run_sparsify(*req, graph, granted, &rep, &err)) {
        rec->cache_hit = rep.cache_hit;
        out = encode_reply(type, rep, f.request_id);
      } else {
        rec->error_code = static_cast<std::uint32_t>(err.code);
        errors_.fetch_add(1, std::memory_order_relaxed);
        telemetry_plane_.count_refusal(err.code);
        out = encode_error(err, f.request_id);
      }
    } else {
      const MatchReply rep = run_match(*req, graph, serial, granted,
                                       type == FrameType::kMatch);
      rec->status = rep.status;
      rec->stop_reason = rep.stop_reason;
      rec->cache_hit = rep.cache_hit;
      rec->mem_peak_bytes = rep.mem_peak_bytes;
      telemetry_plane_.count_outcome(static_cast<RunStatus>(rep.status));
      if (type == FrameType::kMatch) {
        telemetry_plane_.count_cache(rep.cache_hit != 0);
      }
      out = encode_reply(type, rep, f.request_id);
    }
  }
  if (entry != nullptr) complete_token(req->client_token, entry, out);
  const bool ok = send_frame(t, out);

  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(serial);
  }
  return_budget(granted);
  inflight_count_.fetch_sub(1, std::memory_order_relaxed);
  // The serving plane keeps its own aggregate of every request's
  // library instruments (ladder rungs, guard polls, sparsify marks),
  // independent of whether the process-global registry gets them.
  if (telemetry_plane_.enabled()) {
    ctx.metrics().merge_into(telemetry_plane_.registry());
  }
  export_request_artifacts(ctx, serial);
  return ok;
}

MatchReply Server::run_match(const JobRequest& req,
                             const std::shared_ptr<const Graph>& graph,
                             std::uint64_t serial, std::uint64_t budget,
                             bool use_cache) {
  MatchReply rep;
  rep.server_serial = serial;
  const ApproxMatchingConfig cfg = config_for(req);
  RunLimits limits = limits_for(req, budget);
  const VertexId delta = delta_for(req);
  rep.delta = delta;

  RunOutcome outcome;
  std::shared_ptr<const Graph> sp;
  if (use_cache) {
    sp = cache_.get_sparsifier(key_of(req, delta));
  }

  if (sp != nullptr) {
    rep.cache_hit = 1;
    outcome = approx_maximum_matching_guarded(*graph, cfg, limits, sp.get());
  } else if (!use_cache) {
    // PIPELINE: the deliberately cold end-to-end path (the bench's
    // baseline); the ladder builds its own sparsifier, cache untouched.
    outcome = approx_maximum_matching_guarded(*graph, cfg, limits);
  } else {
    // MATCH miss: build under this request's QoS envelope, insert into
    // the cache only on success, then match on the shared handle. The
    // request's deadline and poll budget span both stages — what the
    // build consumed comes off the matching stage's allowance — so the
    // envelope means the same thing hit or miss.
    WallTimer build_timer;
    guard::RunGuard::Limits bl;
    bl.deadline_ms = limits.deadline_ms;
    bl.mem_budget_bytes = limits.mem_budget_bytes;
    bl.cancel_after_polls = limits.cancel_after_polls;
    guard::RunGuard build_guard(bl);
    build_guard.set_parent(guard::active());
    SparsifierStats stats;
    Graph built;
    bool build_ok = false;
    std::string build_detail;
    try {
      const guard::ScopedGuard installed(build_guard);
      built = build_matching_sparsifier(*graph, cfg, &stats);
      build_ok = true;
    } catch (const guard::Interrupted& e) {
      build_detail = e.what();
    }
    const std::uint64_t build_polls = build_guard.polls();
    const std::uint64_t build_peak = build_guard.memory().peak();
    if (limits.deadline_ms > 0.0) {
      limits.deadline_ms =
          std::max(1.0, req.deadline_ms - build_timer.seconds() * 1e3);
    }
    if (limits.cancel_after_polls > 0) {
      limits.cancel_after_polls = limits.cancel_after_polls > build_polls
                                      ? limits.cancel_after_polls - build_polls
                                      : 1;
    }

    if (build_ok) {
      std::uint64_t bytes = 0;
      sp = cache_.put_sparsifier(key_of(req, delta), std::move(built), &bytes);
      outcome = approx_maximum_matching_guarded(*graph, cfg, limits, sp.get());
      if (outcome.status == RunStatus::kOk) {
        // Rung 0 ran on the graph we just built: report its build-stage
        // telemetry (the guarded call saw a prebuilt and reported 0s).
        outcome.result.probes = stats.probes;
        outcome.result.sparsify_seconds = stats.total_seconds;
      }
    } else {
      tripped_builds_.fetch_add(1, std::memory_order_relaxed);
      const guard::StopReason why = build_guard.stop_reason();
      if (why == guard::StopReason::kCancelled ||
          limits.degrade == RunLimits::Degrade::kOff) {
        outcome.status = why == guard::StopReason::kCancelled
                             ? RunStatus::kCancelled
                             : RunStatus::kFailed;
        outcome.stop_reason = why;
        outcome.partial = true;
        outcome.result.matching = Matching(graph->num_vertices());
        outcome.detail = build_detail;
      } else {
        // The cache stays untouched (never poisoned by a tripped
        // build); the remaining window walks the ladder cold.
        limits.cancel_after_polls = 0;
        outcome = approx_maximum_matching_guarded(*graph, cfg, limits);
        outcome.detail = build_detail + "; " + outcome.detail;
        if (outcome.stop_reason == guard::StopReason::kNone) {
          outcome.stop_reason = why;
        }
      }
    }
    outcome.polls += build_polls;
    outcome.mem_peak_bytes = std::max(outcome.mem_peak_bytes, build_peak);
  }

  rep.status = static_cast<std::uint8_t>(outcome.status);
  rep.stop_reason = static_cast<std::uint8_t>(outcome.stop_reason);
  rep.partial = outcome.partial ? 1 : 0;
  rep.eps_effective = outcome.eps_effective;
  rep.guarantee = outcome.guarantee;
  rep.size_floor = outcome.size_floor;
  if (outcome.result.delta != 0) rep.delta = outcome.result.delta;
  rep.sparsifier_edges = outcome.result.sparsifier_edges;
  rep.polls = outcome.polls;
  rep.mem_peak_bytes = outcome.mem_peak_bytes;
  rep.matched = outcome.result.matching.edges();
  rep.detail = outcome.detail;
  return rep;
}

bool Server::run_sparsify(const JobRequest& req,
                          const std::shared_ptr<const Graph>& graph,
                          std::uint64_t budget, SparsifyReply* reply,
                          ErrorReply* error) {
  const ApproxMatchingConfig cfg = config_for(req);
  const VertexId delta = delta_for(req);
  reply->delta = delta;
  const SparsifierKey key = key_of(req, delta);
  if (const auto sp = cache_.get_sparsifier(key)) {
    reply->cache_hit = 1;
    reply->edges = sp->num_edges();
    return true;
  }
  WallTimer timer;
  guard::RunGuard::Limits bl;
  bl.deadline_ms = req.deadline_ms;
  bl.mem_budget_bytes = budget;
  bl.cancel_after_polls = req.cancel_after_polls;
  guard::RunGuard build_guard(bl);
  build_guard.set_parent(guard::active());
  Graph built;
  try {
    const guard::ScopedGuard installed(build_guard);
    built = build_matching_sparsifier(*graph, cfg, nullptr);
  } catch (const guard::Interrupted& e) {
    // A bare build has no degradation ladder to fall back on: report
    // kTripped, cache untouched.
    tripped_builds_.fetch_add(1, std::memory_order_relaxed);
    error->code = ErrorCode::kTripped;
    error->message = e.what();
    return false;
  }
  reply->edges = built.num_edges();
  reply->build_ms = timer.seconds() * 1e3;
  cache_.put_sparsifier(key, std::move(built), &reply->bytes_charged);
  return true;
}

bool Server::handle_stats(Transport& t, const Frame& f) {
  const auto format =
      decode_stats_request({f.payload.data(), f.payload.size()});
  if (!format) {
    return send_error(t, f.request_id, ErrorCode::kBadFrame,
                      "malformed STATS payload (unknown format byte?)");
  }
  const GraphCache::Stats cs = cache_.stats();
  const Telemetry counters = telemetry();
  StatsReply rep;
  if (*format == kStatsFormatPrometheus) {
    rep.json = telemetry_plane_.prometheus(counters, cs, shutting_down());
    return send_frame(t, encode_reply(FrameType::kStats, rep, f.request_id));
  }
  if (*format == kStatsFormatFlight) {
    rep.json = flight_ndjson();
    return send_frame(t, encode_reply(FrameType::kStats, rep, f.request_id));
  }
  std::string& j = rep.json;
  j = "{";
  // "schema" leads the document so consumers can reject before parsing
  // anything else (DESIGN.md §16); bumped only on breaking changes.
  append_json(j, "schema", kStatsSchemaVersion, /*first=*/true);
  append_json(j, "requests", counters.requests);
  append_json(j, "errors", counters.errors);
  append_json(j, "shed", counters.shed);
  append_json(j, "budget_clamped", counters.budget_clamped);
  append_json(j, "tripped_builds", counters.tripped_builds);
  append_json(j, "cancels_delivered", counters.cancels_delivered);
  append_json(j, "jobs_executed", counters.jobs_executed);
  append_json(j, "dedup_replays", counters.dedup_replays);
  append_json(j, "dedup_waits", counters.dedup_waits);
  append_json(j, "sessions_reaped", counters.sessions_reaped);
  append_json(j, "connections", counters.connections);
  append_json(j, "inflight", counters.inflight);
  append_json(j, "shutting_down", shutting_down() ? 1 : 0);
  j += ",\"cache\":{";
  append_json(j, "hits", cs.hits, /*first=*/true);
  append_json(j, "misses", cs.misses);
  append_json(j, "evictions", cs.evictions);
  append_json(j, "refused", cs.refused);
  append_json(j, "bytes_used", cs.bytes_used);
  append_json(j, "bytes_cap", cs.bytes_cap);
  append_json(j, "graphs", cs.graphs);
  append_json(j, "sparsifiers", cs.sparsifiers);
  j += "}}";
  return send_frame(t, encode_reply(FrameType::kStats, rep, f.request_id));
}

bool Server::handle_evict(Transport& t, const Frame& f) {
  const auto req = decode_evict({f.payload.data(), f.payload.size()});
  if (!req) {
    return send_error(t, f.request_id, ErrorCode::kBadFrame,
                      "malformed EVICT payload");
  }
  EvictReply rep;
  cache_.evict(req->source, &rep.entries, &rep.bytes_freed);
  return send_frame(t, encode_reply(FrameType::kEvict, rep, f.request_id));
}

bool Server::handle_cancel(Transport& t, const Frame& f) {
  const auto req = decode_cancel({f.payload.data(), f.payload.size()});
  if (!req) {
    return send_error(t, f.request_id, ErrorCode::kBadFrame,
                      "malformed CANCEL payload");
  }
  CancelReply rep;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(req->server_serial);
    if (it != inflight_.end()) {
      it->second->cancel();
      rep.found = 1;
      cancels_delivered_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return send_frame(t, encode_reply(FrameType::kCancel, rep, f.request_id));
}

bool Server::handle_shutdown(Transport& t, const Frame& f) {
  // Drain BEFORE the ack goes out: a client that has seen the ack must
  // never observe the server still admitting work. But wake wait() only
  // AFTER the ack is queued to the kernel — waking first lets the
  // owner's stop() sever this session between drain and send, and the
  // client that asked for the shutdown never sees its ack.
  begin_drain();
  Frame ack;
  ack.type = reply(FrameType::kShutdown);
  ack.request_id = f.request_id;
  const bool ok = send_frame(t, ack);
  notify_stop();
  return ok;
}

std::uint64_t Server::grant_budget(std::uint64_t requested) {
  if (requested == 0) return 0;  // unlimited passes through unclamped
  std::lock_guard<std::mutex> lock(inflight_mu_);
  const std::uint64_t cap = opts_.cache_bytes;
  const std::uint64_t avail = cap > promised_budget_ ? cap - promised_budget_
                                                     : 0;
  const std::uint64_t granted =
      std::min(requested, std::max<std::uint64_t>(avail, 1));
  if (granted < requested) {
    budget_clamped_.fetch_add(1, std::memory_order_relaxed);
  }
  promised_budget_ += granted;
  return granted;
}

void Server::return_budget(std::uint64_t granted) {
  if (granted == 0) return;
  std::lock_guard<std::mutex> lock(inflight_mu_);
  promised_budget_ -= granted;
}

void Server::maybe_dump_flight(const FlightRecord& rec) {
  if (opts_.flight_path.empty()) return;
  const bool tripped =
      rec.stop_reason != 0 ||
      rec.error_code == static_cast<std::uint32_t>(ErrorCode::kTripped);
  if (!tripped) return;
  // Serialized so two concurrent trips write two whole dumps in turn,
  // never an interleaving; last writer wins, which is exactly the
  // "state of the ring at the latest incident" the file promises.
  std::lock_guard<std::mutex> lock(flight_dump_mu_);
  std::ofstream out(opts_.flight_path, std::ios::trunc);
  if (out) out << flight_ndjson();
}

void Server::export_request_artifacts(guard::RunContext& ctx,
                                      std::uint64_t serial) {
  if (!opts_.metrics_prefix.empty()) {
    std::ofstream out(opts_.metrics_prefix + ".req" + std::to_string(serial) +
                      ".json");
    if (out) out << ctx.metrics_snapshot().to_json() << "\n";
  }
  if (!opts_.trace_prefix.empty()) {
    ctx.tracer().export_chrome(opts_.trace_prefix + ".req" +
                               std::to_string(serial) + ".json");
  }
}

Server::Telemetry Server::telemetry() const {
  Telemetry t;
  t.connections = connections_.load(std::memory_order_relaxed);
  t.requests = requests_.load(std::memory_order_relaxed);
  t.errors = errors_.load(std::memory_order_relaxed);
  t.shed = shed_.load(std::memory_order_relaxed);
  t.budget_clamped = budget_clamped_.load(std::memory_order_relaxed);
  t.tripped_builds = tripped_builds_.load(std::memory_order_relaxed);
  t.cancels_delivered = cancels_delivered_.load(std::memory_order_relaxed);
  t.jobs_executed = jobs_executed_.load(std::memory_order_relaxed);
  t.dedup_replays = dedup_replays_.load(std::memory_order_relaxed);
  t.dedup_waits = dedup_waits_.load(std::memory_order_relaxed);
  t.sessions_reaped = sessions_reaped_.load(std::memory_order_relaxed);
  t.inflight = inflight_count_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace matchsparse::serve
