#include "serve/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

namespace matchsparse::serve {

const char* to_string(IoStatus s) {
  switch (s) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kEof:
      return "eof";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kReset:
      return "reset";
  }
  return "unknown";
}

IoStatus Transport::send_all(const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const IoResult r = send(data + off, len - off);
    if (!r.ok()) return r.status;
    off += r.bytes;
  }
  return IoStatus::kOk;
}

IoStatus Transport::recv_all(std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const IoResult r = recv(data + off, len - off);
    if (!r.ok()) return r.status;
    off += r.bytes;
  }
  return IoStatus::kOk;
}

// ---------------------------------------------------------------------------
// FdTransport
// ---------------------------------------------------------------------------

FdTransport::~FdTransport() {
  if (owns_fd_) close();
}

int FdTransport::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void FdTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FdTransport::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

IoStatus FdTransport::wait_ready(short events) {
  // The deadline is absolute across EINTR retries: a signal storm must
  // not extend it (each retry polls only the remaining window).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                timeout_ms_));
  for (;;) {
    pollfd p{};
    p.fd = fd_;
    p.events = events;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return IoStatus::kTimeout;
    const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
    if (rc > 0) return IoStatus::kOk;  // readable/writable/HUP/ERR: let
                                       // the syscall report what it is
    if (rc == 0) return IoStatus::kTimeout;
    if (errno != EINTR) return IoStatus::kReset;
  }
}

IoResult FdTransport::send(const std::uint8_t* data, std::size_t len) {
  if (fd_ < 0) return {IoStatus::kReset, 0};
  for (;;) {
    if (timeout_ms_ > 0.0) {
      const IoStatus ready = wait_ready(POLLOUT);
      if (ready != IoStatus::kOk) return {ready, 0};
    }
    // MSG_NOSIGNAL: a peer that died mid-reply must surface as kReset
    // on this transport, not SIGPIPE the whole process.
    const ssize_t r = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (r > 0) return {IoStatus::kOk, static_cast<std::size_t>(r)};
    if (r < 0 && errno == EINTR) continue;
    return {IoStatus::kReset, 0};
  }
}

IoResult FdTransport::recv(std::uint8_t* data, std::size_t len) {
  if (fd_ < 0) return {IoStatus::kReset, 0};
  for (;;) {
    if (timeout_ms_ > 0.0) {
      const IoStatus ready = wait_ready(POLLIN);
      if (ready != IoStatus::kOk) return {ready, 0};
    }
    const ssize_t r = ::recv(fd_, data, len, 0);
    if (r > 0) return {IoStatus::kOk, static_cast<std::size_t>(r)};
    if (r == 0) return {IoStatus::kEof, 0};
    if (errno == EINTR) continue;
    return {IoStatus::kReset, 0};
  }
}

// ---------------------------------------------------------------------------
// FaultTransport
// ---------------------------------------------------------------------------

FaultTransport::FaultTransport(std::unique_ptr<Transport> inner,
                               TransportFaultPlan plan)
    : inner_(std::move(inner)), plan_(plan), rng_(plan.seed) {}

void FaultTransport::kill() {
  dead_ = true;
  ++injected_.resets;
  // Sever the stream (peer sees EOF, possibly mid-frame) but do NOT
  // close the inner transport: session transports don't own their fd —
  // the owner's teardown closes it after the join, and closing here
  // would race that close onto a recycled descriptor.
  if (inner_) inner_->shutdown_write();
}

bool FaultTransport::pre_op(IoResult* dead) {
  if (dead_ || inner_ == nullptr || !inner_->valid()) {
    *dead = {IoStatus::kReset, 0};
    return true;
  }
  if (plan_.stall > 0.0 && rng_.chance(plan_.stall)) {
    ++injected_.stalls;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(plan_.stall_ms));
  }
  if (plan_.reset > 0.0 && rng_.chance(plan_.reset)) {
    kill();
    *dead = {IoStatus::kReset, 0};
    return true;
  }
  return false;
}

IoResult FaultTransport::send(const std::uint8_t* data, std::size_t len) {
  IoResult dead;
  if (pre_op(&dead)) return dead;
  std::size_t n = len;
  if (n > 1 && plan_.short_io > 0.0 && rng_.chance(plan_.short_io)) {
    ++injected_.shorts;
    n = 1 + static_cast<std::size_t>(rng_.below(n - 1));
  }
  if (plan_.reset_after_bytes > 0 &&
      bytes_moved_ + n >= plan_.reset_after_bytes) {
    // Deliver exactly up to the scripted byte, then die: the peer sees
    // a torn frame, not a clean boundary.
    n = static_cast<std::size_t>(plan_.reset_after_bytes - bytes_moved_);
    if (n == 0) {
      kill();
      return {IoStatus::kReset, 0};
    }
    std::vector<std::uint8_t> prefix(data, data + n);
    const IoStatus st = inner_->send_all(prefix.data(), prefix.size());
    bytes_moved_ += n;
    kill();
    return st == IoStatus::kOk ? IoResult{IoStatus::kOk, n}
                               : IoResult{IoStatus::kReset, 0};
  }
  if (plan_.corrupt > 0.0 && rng_.chance(plan_.corrupt)) {
    ++injected_.corruptions;
    std::vector<std::uint8_t> copy(data, data + n);
    copy[rng_.below(copy.size())] ^=
        static_cast<std::uint8_t>(1u << rng_.below(8));
    const IoResult r = inner_->send(copy.data(), copy.size());
    if (r.ok()) bytes_moved_ += r.bytes;
    return r;
  }
  const IoResult r = inner_->send(data, n);
  if (r.ok()) bytes_moved_ += r.bytes;
  return r;
}

IoResult FaultTransport::recv(std::uint8_t* data, std::size_t len) {
  IoResult dead;
  if (pre_op(&dead)) return dead;
  std::size_t n = len;
  if (n > 1 && plan_.short_io > 0.0 && rng_.chance(plan_.short_io)) {
    ++injected_.shorts;
    n = 1 + static_cast<std::size_t>(rng_.below(n - 1));
  }
  if (plan_.reset_after_bytes > 0 && bytes_moved_ >= plan_.reset_after_bytes) {
    kill();
    return {IoStatus::kReset, 0};
  }
  if (plan_.reset_after_bytes > 0 &&
      bytes_moved_ + n > plan_.reset_after_bytes) {
    n = static_cast<std::size_t>(plan_.reset_after_bytes - bytes_moved_);
  }
  const IoResult r = inner_->recv(data, n);
  if (r.ok()) bytes_moved_ += r.bytes;
  return r;
}

void FaultTransport::shutdown_write() {
  if (inner_) inner_->shutdown_write();
}

void FaultTransport::close() {
  if (inner_) inner_->close();
}

bool FaultTransport::valid() const {
  return !dead_ && inner_ != nullptr && inner_->valid();
}

void FaultTransport::set_timeout_ms(double timeout_ms) {
  if (inner_) inner_->set_timeout_ms(timeout_ms);
}

int FaultTransport::fd() const { return inner_ ? inner_->fd() : -1; }

// ---------------------------------------------------------------------------
// BufferTransport
// ---------------------------------------------------------------------------

IoResult BufferTransport::send(const std::uint8_t* data, std::size_t len) {
  if (closed_) return {IoStatus::kReset, 0};
  if (len == 0) return {IoStatus::kOk, 0};
  buf_.insert(buf_.end(), data, data + len);
  return {IoStatus::kOk, len};
}

IoResult BufferTransport::recv(std::uint8_t* data, std::size_t len) {
  if (closed_) return {IoStatus::kReset, 0};
  const std::size_t avail = buf_.size() - pos_;
  if (avail == 0) return {eof_ ? IoStatus::kEof : IoStatus::kTimeout, 0};
  const std::size_t n = std::min(len, avail);
  std::memcpy(data, buf_.data() + pos_, n);
  pos_ += n;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return {IoStatus::kOk, n};
}

}  // namespace matchsparse::serve
