#include "serve/cache.hpp"

#include <utility>

namespace matchsparse::serve {

namespace {

guard::RunGuard::Limits cache_limits(std::uint64_t cap_bytes) {
  guard::RunGuard::Limits l;
  l.mem_budget_bytes = cap_bytes;
  return l;
}

}  // namespace

GraphCache::GraphCache(std::uint64_t cap_bytes)
    : guard_(cache_limits(cap_bytes)) {
  stats_.bytes_cap = cap_bytes;
}

std::uint64_t GraphCache::graph_bytes(const Graph& g) {
  // The two CSR arrays dominate; the fixed header is charged so even an
  // empty graph has nonzero footprint.
  return (static_cast<std::uint64_t>(g.num_vertices()) + 1) *
             sizeof(EdgeIndex) +
         2 * g.num_edges() * sizeof(VertexId) + sizeof(Graph);
}

std::string GraphCache::graph_key(const std::string& source) {
  return "g:" + source;
}

std::string GraphCache::sparsifier_key(const SparsifierKey& key) {
  // Lane-count normalization: every parallel lane count draws the same
  // sparsifier, so all of them share the "0" scheme slot. The source is
  // length-prefixed so a '/'-containing client name can never alias
  // another source's (Δ, seed, scheme) suffix.
  const std::uint64_t scheme = key.lanes == 1 ? 1 : 0;
  return "s:" + std::to_string(key.source.size()) + ":" + key.source + "/" +
         std::to_string(key.delta) + "/" + std::to_string(key.seed) + "/" +
         std::to_string(scheme);
}

std::shared_ptr<const Graph> GraphCache::get_locked(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->graph;
}

std::shared_ptr<const Graph> GraphCache::get_graph(const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  return get_locked(graph_key(source));
}

std::shared_ptr<const Graph> GraphCache::get_sparsifier(
    const SparsifierKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  return get_locked(sparsifier_key(key));
}

void GraphCache::erase_locked(Lru::iterator it, std::uint64_t* bytes_freed) {
  if (bytes_freed != nullptr) *bytes_freed += it->charge.bytes();
  if (it->is_graph) {
    --stats_.graphs;
  } else {
    --stats_.sparsifiers;
  }
  index_.erase(it->key);
  lru_.erase(it);  // ~MemCharge releases the budget bytes
}

std::shared_ptr<const Graph> GraphCache::put_locked(
    const std::string& key, const std::string& source, bool is_graph, Graph g,
    std::uint64_t* bytes_charged, bool* replaced) {
  if (bytes_charged != nullptr) *bytes_charged = 0;
  if (replaced != nullptr) *replaced = false;

  // Replace-in-place: drop the old identity first. A replaced *graph*
  // also invalidates every sparsifier derived from it — they were built
  // from edges that no longer exist under this name.
  if (const auto old = index_.find(key); old != index_.end()) {
    if (replaced != nullptr) *replaced = true;
    erase_locked(old->second, nullptr);
    ++stats_.evictions;
  }
  if (is_graph) {
    for (auto it = lru_.begin(); it != lru_.end();) {
      const auto next = std::next(it);
      if (!it->is_graph && it->source == source) {
        erase_locked(it, nullptr);
        ++stats_.evictions;
      }
      it = next;
    }
  }

  const std::uint64_t bytes = graph_bytes(g);
  auto shared = std::make_shared<const Graph>(std::move(g));
  if (bytes > guard_.memory().cap()) {
    // Larger than the whole cache: hand the graph back uncached.
    ++stats_.refused;
    return shared;
  }

  // Evict from the LRU tail until the newcomer fits the cap.
  while (guard_.memory().used() + bytes > guard_.memory().cap() &&
         !lru_.empty()) {
    erase_locked(std::prev(lru_.end()), nullptr);
    ++stats_.evictions;
  }

  Entry e;
  e.key = key;
  e.source = source;
  e.graph = shared;
  e.is_graph = is_graph;
  {
    // MemCharge binds to the thread's installed guard; install the
    // cache's own for the charge so the bytes account against the cache
    // cap, not against whatever request context called us.
    const guard::ScopedGuard installed(guard_);
    try {
      e.charge = guard::MemCharge(bytes, "serve.cache.entry");
    } catch (const guard::BudgetExceeded&) {
      // Unreachable given the eviction loop above, but harmless: refuse.
      ++stats_.refused;
      return shared;
    }
  }
  if (bytes_charged != nullptr) *bytes_charged = bytes;
  lru_.push_front(std::move(e));
  index_[key] = lru_.begin();
  if (is_graph) {
    ++stats_.graphs;
  } else {
    ++stats_.sparsifiers;
  }
  return shared;
}

std::shared_ptr<const Graph> GraphCache::put_graph(const std::string& source,
                                                   Graph g,
                                                   std::uint64_t* bytes_charged,
                                                   bool* replaced) {
  std::lock_guard<std::mutex> lock(mu_);
  return put_locked(graph_key(source), source, /*is_graph=*/true,
                    std::move(g), bytes_charged, replaced);
}

std::shared_ptr<const Graph> GraphCache::put_sparsifier(
    const SparsifierKey& key, Graph g, std::uint64_t* bytes_charged) {
  std::lock_guard<std::mutex> lock(mu_);
  return put_locked(sparsifier_key(key), key.source, /*is_graph=*/false,
                    std::move(g), bytes_charged, nullptr);
}

void GraphCache::evict(const std::string& source, std::uint32_t* entries,
                       std::uint64_t* bytes_freed) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint32_t dropped = 0;
  std::uint64_t freed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    const auto next = std::next(it);
    if (source.empty() || it->source == source) {
      erase_locked(it, &freed);
      ++dropped;
      ++stats_.evictions;
    }
    it = next;
  }
  if (entries != nullptr) *entries = dropped;
  if (bytes_freed != nullptr) *bytes_freed = freed;
}

GraphCache::Stats GraphCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.bytes_used = guard_.memory().used();
  return s;
}

}  // namespace matchsparse::serve
