// The daemon's graph + sparsifier cache (DESIGN.md §15).
//
// One LRU over two kinds of entries:
//
//   graph       key "g:<source>"                    — installed by LOAD
//   sparsifier  key "s:<len>:<source>/<Δ>/<seed>/<scheme>" — built by
//               SPARSIFY or a MATCH miss; the source is length-prefixed
//               so a '/'-containing name cannot alias another source's
//               numeric suffix
//
// The sparsifier key is exactly the determinism identity of
// build_matching_sparsifier: G_Δ is a pure function of (graph, Δ, seed)
// per drawing scheme, and the scheme splits serial (threads == 1) vs
// fused-parallel (any other lane count — normalized to 0 in the key,
// since every parallel lane count draws the same edges). Two requests
// that agree on (source, β, ε, seed, scheme) therefore share one cached
// G_Δ and get bit-identical matchings out of it.
//
// Byte accounting is MemCharge-backed: the cache owns a RunGuard whose
// MemoryBudget caps the resident bytes, and every entry holds a
// guard::MemCharge against it for as long as it lives in the cache.
// put() evicts LRU entries until the newcomer fits; an entry larger
// than the whole cap is refused (the caller serves it uncached). Lookups
// hand out shared_ptrs, so eviction never invalidates a graph an
// in-flight request is still matching on — the bytes of an evicted but
// still-referenced graph are uncharged immediately (the cache cap bounds
// *cached* bytes; in-flight working memory is each request's own
// mem_budget's business).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/graph.hpp"
#include "guard/guard.hpp"

namespace matchsparse::serve {

/// Cache identity of one sparsifier (see file comment for the scheme
/// normalization rule applied to `lanes`).
struct SparsifierKey {
  std::string source;
  VertexId delta = 0;
  std::uint64_t seed = 0;
  std::uint64_t lanes = 1;  // 1 = serial scheme, 0 = any parallel count
};

class GraphCache {
 public:
  explicit GraphCache(std::uint64_t cap_bytes);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t refused = 0;  // entries larger than the whole cap
    std::uint64_t bytes_used = 0;
    std::uint64_t bytes_cap = 0;
    std::uint32_t graphs = 0;
    std::uint32_t sparsifiers = 0;
  };

  /// nullptr on miss. A hit refreshes recency.
  std::shared_ptr<const Graph> get_graph(const std::string& source);
  std::shared_ptr<const Graph> get_sparsifier(const SparsifierKey& key);

  /// Installs (replacing any previous entry of the same identity; a
  /// replaced graph drops its dependent sparsifiers too). Returns the
  /// shared handle — non-null even when caching was refused for size,
  /// so callers always get their graph back. `bytes_charged` reports
  /// the resident charge (0 when refused); `replaced` whether an old
  /// graph of this name was dropped.
  std::shared_ptr<const Graph> put_graph(const std::string& source, Graph g,
                                         std::uint64_t* bytes_charged,
                                         bool* replaced);
  std::shared_ptr<const Graph> put_sparsifier(const SparsifierKey& key,
                                              Graph g,
                                              std::uint64_t* bytes_charged);

  /// Drops `source`'s graph and every sparsifier derived from it;
  /// empty source drops everything. Returns entries dropped and the
  /// bytes uncharged.
  void evict(const std::string& source, std::uint32_t* entries,
             std::uint64_t* bytes_freed);

  Stats stats() const;

  /// Resident CSR bytes of a graph — the unit of all accounting here.
  static std::uint64_t graph_bytes(const Graph& g);

 private:
  struct Entry {
    std::string key;
    std::string source;  // owning source name (for dependent eviction)
    std::shared_ptr<const Graph> graph;
    guard::MemCharge charge;
    bool is_graph = false;
  };
  using Lru = std::list<Entry>;

  std::shared_ptr<const Graph> get_locked(const std::string& key);
  std::shared_ptr<const Graph> put_locked(const std::string& key,
                                          const std::string& source,
                                          bool is_graph, Graph g,
                                          std::uint64_t* bytes_charged,
                                          bool* replaced);
  void erase_locked(Lru::iterator it, std::uint64_t* bytes_freed);

  static std::string graph_key(const std::string& source);
  static std::string sparsifier_key(const SparsifierKey& key);

  // guard_ is declared before the entry containers: entries hold
  // MemCharges against its budget and must be destroyed first (members
  // destruct in reverse declaration order).
  guard::RunGuard guard_;
  mutable std::mutex mu_;
  Lru lru_;  // front = most recently used
  std::unordered_map<std::string, Lru::iterator> index_;
  Stats stats_;
};

}  // namespace matchsparse::serve
