// The daemon's live telemetry plane (DESIGN.md §16).
//
// ServeTelemetry is the server-owned half of the observability story:
// per-frame-type queue-wait / service-time BucketHistograms, the
// outcome / refusal / cache counters, the always-on flight recorder,
// and the Prometheus text-exposition renderer behind STATS format=1.
// It aggregates in a server-owned obs::Registry that each request's
// RunContext registry is folded into at completion, so the exposition
// carries both the serving-path latency split and the library's own
// per-run instruments (sparsify marks, ladder rungs, guard polls)
// without a process-global in the way of concurrent servers.
//
// Cost model: the hot-path write is a handful of relaxed atomic
// increments (BucketHistogram::observe + a counter or two) — no locks,
// no allocation — which is what the bench_serve telemetry-overhead
// section gates at <= 1.05x the telemetry-off p50. The flight recorder
// is not gated by `enabled` downstream of ServerOptions::telemetry;
// its ring writes are cheaper still, and an incident is exactly when
// the operator needs it populated.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/api.hpp"
#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/flight.hpp"
#include "serve/protocol.hpp"

namespace matchsparse::serve {

/// Process-lifetime server counters (monotonic except inflight). The
/// struct lives here so the Server and the exposition renderer share
/// one definition; Server re-exports it as Server::Telemetry.
struct ServerCounters {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;  // frames dispatched, all types
  std::uint64_t errors = 0;    // kError replies sent
  std::uint64_t shed = 0;      // admission refusals (inflight cap)
  std::uint64_t budget_clamped = 0;
  std::uint64_t tripped_builds = 0;  // SPARSIFY/MATCH builds that tripped
  std::uint64_t cancels_delivered = 0;
  std::uint64_t jobs_executed = 0;   // jobs that actually ran (admitted,
                                     // not deduplicated)
  std::uint64_t dedup_replays = 0;   // retried tokens answered from the
                                     // dedup window without re-executing
  std::uint64_t dedup_waits = 0;     // retries that waited out a still-
                                     // running original
  std::uint64_t sessions_reaped = 0;  // sessions dropped by the idle /
                                      // write deadline watchdogs
  std::uint32_t inflight = 0;
};

class ServeTelemetry {
 public:
  /// `flight_capacity` sizes the recorder ring (clamped >= 1);
  /// `enabled` gates everything except the flight recorder.
  ServeTelemetry(std::size_t flight_capacity, bool enabled);

  ServeTelemetry(const ServeTelemetry&) = delete;
  ServeTelemetry& operator=(const ServeTelemetry&) = delete;

  bool enabled() const { return enabled_; }
  obs::Registry& registry() { return registry_; }
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  /// Hot path: one handled frame's queue-wait (bytes-arrived to
  /// dispatched) and service time (dispatched to reply sent), split per
  /// frame type ("serve.queue_ms.match", "serve.service_ms.match", ...).
  void observe_frame(FrameType type, double queue_ms, double service_ms);

  /// One served job's landing rung on the degradation ladder
  /// ("serve.outcome.ok", "serve.outcome.degraded-maximal", ...).
  void count_outcome(RunStatus status);
  /// One refused request by error code ("serve.refused.shed", ...).
  void count_refusal(ErrorCode code);
  /// One MATCH served from / missing the sparsifier cache.
  void count_cache(bool hit);

  /// Always-on (see file comment): one completed or refused request
  /// into the ring.
  void record_flight(const FlightRecord& r) { flight_.record(r); }

  /// Prometheus text exposition format v0.0.4 of everything the daemon
  /// knows: the server counters, cache stats, flight-ring state, and
  /// every instrument of the server-owned registry (BucketHistograms
  /// render as summaries with quantile labels; the per-frame families
  /// "serve.queue_ms.*" / "serve.service_ms.*" fold their last name
  /// segment into a frame="..." label).
  std::string prometheus(const ServerCounters& counters,
                         const GraphCache::Stats& cache,
                         bool shutting_down) const;

 private:
  /// One slot per request frame type plus a trailing catch-all for
  /// unrecognized tags; see frame_slot() in the .cpp.
  static constexpr std::size_t kFrameSlots = 9;

  struct FrameInstruments {
    obs::BucketHistogram* queue = nullptr;
    obs::BucketHistogram* service = nullptr;
  };

  bool enabled_;
  obs::Registry registry_;
  FlightRecorder flight_;
  /// Pre-resolved at construction (registry addresses are stable for
  /// its lifetime), so the per-frame hot path never takes the registry
  /// mutex for a name lookup.
  std::array<FrameInstruments, kFrameSlots> frames_{};
};

}  // namespace matchsparse::serve
