#include "serve/flight.hpp"

#include <bit>
#include <cstdio>

#include "core/api.hpp"
#include "guard/guard.hpp"
#include "serve/protocol.hpp"

namespace matchsparse::serve {

namespace {

/// FlightRecord <-> the 9 payload words of a slot. Field packing is an
/// in-process detail (the wire never sees it), so layout changes are
/// free as long as pack and unpack agree.
std::array<std::uint64_t, 9> pack(const FlightRecord& r) {
  std::array<std::uint64_t, 9> w{};
  w[0] = r.serial;
  w[1] = r.request_id;
  w[2] = static_cast<std::uint64_t>(r.frame_type) |
         static_cast<std::uint64_t>(r.status) << 8 |
         static_cast<std::uint64_t>(r.stop_reason) << 16 |
         static_cast<std::uint64_t>(r.cache_hit) << 24 |
         static_cast<std::uint64_t>(r.error_code) << 32;
  w[3] = r.delta;
  w[4] = r.seed;
  w[5] = r.lanes;
  w[6] = std::bit_cast<std::uint64_t>(r.queue_ms);
  w[7] = std::bit_cast<std::uint64_t>(r.service_ms);
  w[8] = r.mem_peak_bytes;
  return w;
}

FlightRecord unpack(const std::array<std::uint64_t, 9>& w) {
  FlightRecord r;
  r.serial = w[0];
  r.request_id = w[1];
  r.frame_type = static_cast<std::uint8_t>(w[2]);
  r.status = static_cast<std::uint8_t>(w[2] >> 8);
  r.stop_reason = static_cast<std::uint8_t>(w[2] >> 16);
  r.cache_hit = static_cast<std::uint8_t>(w[2] >> 24);
  r.error_code = static_cast<std::uint32_t>(w[2] >> 32);
  r.delta = static_cast<std::uint32_t>(w[3]);
  r.seed = w[4];
  r.lanes = w[5];
  r.queue_ms = std::bit_cast<double>(w[6]);
  r.service_ms = std::bit_cast<double>(w[7]);
  r.mem_peak_bytes = w[8];
  return r;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(capacity > 0 ? capacity : 1) {}

void FlightRecorder::record(const FlightRecord& r) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[static_cast<std::size_t>(ticket % slots_.size())];
  // seq_cst throughout the slot: the single total order is what makes a
  // reader's stable-seq check imply it saw no words from a later write.
  slot.seq.store(2 * ticket + 1);
  const auto words = pack(r);
  for (std::size_t i = 0; i < kPayloadWords; ++i) {
    slot.words[i].store(words[i]);
  }
  slot.seq.store(2 * ticket + 2);
}

std::vector<FlightRecord> FlightRecorder::dump() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t n = slots_.size();
  const std::uint64_t begin = end > n ? end - n : 0;
  std::vector<FlightRecord> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& slot = slots_[static_cast<std::size_t>(ticket % n)];
    const std::uint64_t expect = 2 * ticket + 2;
    if (slot.seq.load() != expect) continue;  // in-flight or overwritten
    std::array<std::uint64_t, kPayloadWords> words;
    for (std::size_t i = 0; i < kPayloadWords; ++i) {
      words[i] = slot.words[i].load();
    }
    if (slot.seq.load() != expect) continue;  // overwritten mid-read
    out.push_back(unpack(words));
  }
  return out;
}

std::string flight_record_json(const FlightRecord& r) {
  char num[64];
  std::string out = "{\"serial\":" + std::to_string(r.serial);
  out += ",\"request_id\":" + std::to_string(r.request_id);
  out += ",\"frame\":\"";
  out += to_string(static_cast<FrameType>(r.frame_type));
  out += '"';
  if (r.error_code != 0) {
    out += ",\"error\":\"";
    out += to_string(static_cast<ErrorCode>(r.error_code));
    out += '"';
  } else {
    out += ",\"status\":\"";
    out += to_string(static_cast<RunStatus>(r.status));
    out += "\",\"stop\":\"";
    out += guard::to_string(static_cast<guard::StopReason>(r.stop_reason));
    out += '"';
  }
  out += ",\"cache_hit\":" + std::to_string(r.cache_hit);
  out += ",\"delta\":" + std::to_string(r.delta);
  out += ",\"seed\":" + std::to_string(r.seed);
  out += ",\"lanes\":" + std::to_string(r.lanes);
  std::snprintf(num, sizeof(num), "%.3f", r.queue_ms);
  out += ",\"queue_ms\":";
  out += num;
  std::snprintf(num, sizeof(num), "%.3f", r.service_ms);
  out += ",\"service_ms\":";
  out += num;
  out += ",\"mem_peak_bytes\":" + std::to_string(r.mem_peak_bytes);
  out += '}';
  return out;
}

std::string FlightRecorder::dump_ndjson() const {
  std::string out;
  for (const FlightRecord& r : dump()) {
    out += flight_record_json(r);
    out += '\n';
  }
  return out;
}

}  // namespace matchsparse::serve
