// serve::Client — the blocking request/reply client over any connected
// stream transport (a unix socket, a loopback TCP socket, one end of
// Server::connect_in_process()'s socketpair, or a fault-injecting
// serve::Transport in the chaos harnesses). One request in flight at a
// time: each call sends its frame, then reads frames until the reply
// whose request id matches (the server answers one connection strictly
// in order, so this is the very next reply).
//
// Error surface: every call returns nullopt on failure and records why —
// last_error() holds the server's ErrorReply when the server refused the
// request, transport_failed() turns true when the connection itself died
// (send failure, EOF, a malformed reply frame), and transport_status()
// refines the how: kTimeout means a per-operation deadline set via
// set_io_timeout_ms() expired with the connection possibly still alive
// but the request's fate unknown; kEof/kReset mean the connection is
// gone. The raw send_frame()/recv_frame() escape hatch exists for the
// protocol tests, which need to ship deliberately broken bytes and
// watch the server's exact reaction.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace matchsparse::serve {

class Client {
 public:
  /// Takes ownership of `fd` (closed on destruction; -1 = invalid).
  explicit Client(int fd);
  /// Takes ownership of an arbitrary transport (nullptr = invalid) —
  /// the chaos harnesses hand in FaultTransport-wrapped connections.
  explicit Client(std::unique_ptr<Transport> transport);
  ~Client() = default;

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a daemon's unix socket. Invalid client (valid() false)
  /// on failure.
  static Client connect_unix(const std::string& socket_path);
  /// Connects to a daemon's loopback TCP port.
  static Client connect_tcp(int port);

  bool valid() const { return transport_ != nullptr && transport_->valid(); }
  int fd() const { return transport_ ? transport_->fd() : -1; }
  void close();

  /// Per-operation I/O deadline for both rx and tx, in milliseconds;
  /// 0 (the default) blocks forever — the legacy behavior. An expired
  /// deadline fails the call with transport_status() == kTimeout; the
  /// client does NOT close the connection (the caller decides whether
  /// the request might still land), but a request/reply stream with a
  /// missed reply in it is no longer safely resumable — reconnect.
  void set_io_timeout_ms(double timeout_ms);
  double io_timeout_ms() const { return io_timeout_ms_; }

  std::optional<LoadReply> load(const LoadRequest& req);
  std::optional<SparsifyReply> sparsify(const JobRequest& req);
  std::optional<MatchReply> match(const JobRequest& req);
  std::optional<MatchReply> pipeline(const JobRequest& req);
  /// STATS format=0 (the default, byte-identical on the wire to the
  /// pre-format empty-payload request). Rejects a document whose
  /// "schema" number is newer than kStatsSchemaVersion with a typed
  /// last_error() of kUnsupportedSchema; a document with NO schema
  /// field (a pre-versioning server) is accepted as legacy.
  std::optional<StatsReply> stats();
  /// STATS format=1: the Prometheus text-exposition body.
  std::optional<std::string> stats_prometheus();
  /// STATS format=2: the flight-recorder ndjson dump.
  std::optional<std::string> flight_dump();
  std::optional<EvictReply> evict(const std::string& source);
  std::optional<CancelReply> cancel(std::uint64_t server_serial);
  /// True when the server acked the shutdown.
  bool shutdown();

  /// The server's refusal for the last nullopt return (meaningful only
  /// when transport_failed() is false).
  const ErrorReply& last_error() const { return last_error_; }
  /// The connection itself died or timed out (as opposed to a served
  /// error reply).
  bool transport_failed() const { return transport_failed_; }
  /// How the transport failed: kTimeout (deadline expired, connection
  /// state unknown), kEof (orderly close), kReset (torn connection /
  /// poisoned framing / protocol violation). kOk when transport_failed()
  /// is false.
  IoStatus transport_status() const { return transport_status_; }

  // Raw frame I/O for protocol tests.
  bool send_frame(const Frame& f);
  bool send_bytes(const void* data, std::size_t len);
  /// Blocks (up to the I/O deadline per read) for the next whole frame;
  /// nullopt on EOF / timeout / transport error.
  std::optional<Frame> recv_frame();

 private:
  /// Sends `req` and returns the reply frame for its id, routing a
  /// kError reply into last_error_ (nullopt), anything else through.
  std::optional<Frame> round_trip(const Frame& req, std::uint8_t expect_type);

  /// One STATS round trip in `format`; the decoded reply body.
  std::optional<std::string> stats_body(std::uint8_t format);

  void fail_transport(IoStatus status) {
    transport_failed_ = true;
    transport_status_ = status;
  }

  std::unique_ptr<Transport> transport_;
  double io_timeout_ms_ = 0.0;
  std::uint64_t next_id_ = 0;
  ErrorReply last_error_;
  bool transport_failed_ = false;
  IoStatus transport_status_ = IoStatus::kOk;
  FrameDecoder decoder_;
};

}  // namespace matchsparse::serve
