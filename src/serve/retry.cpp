#include "serve/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace matchsparse::serve {

bool RetryingClient::ensure_connected() {
  if (client_.has_value() && client_->valid() &&
      !client_->transport_failed()) {
    return true;
  }
  client_.emplace(connect_());
  if (!client_->valid()) {
    client_.reset();
    return false;
  }
  ++stats_.reconnects;
  client_->set_io_timeout_ms(policy_.io_timeout_ms);
  return true;
}

void RetryingClient::backoff(double* prev_ms, double floor_ms) {
  // AWS-style decorrelated jitter: each sleep is drawn from
  // uniform(base, 3 * previous) — spreads a thundering herd of retries
  // without the synchronized steps of pure exponential backoff.
  const double hi = std::max(policy_.base_backoff_ms, 3.0 * *prev_ms);
  double sleep_ms = policy_.base_backoff_ms +
                    rng_.uniform() * (hi - policy_.base_backoff_ms);
  sleep_ms = std::min(sleep_ms, policy_.max_backoff_ms);
  // The server's retry-after hint is a floor, not a suggestion: coming
  // back earlier just buys another shed.
  sleep_ms = std::max(sleep_ms, floor_ms);
  *prev_ms = sleep_ms;
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
}

std::uint64_t RetryingClient::fresh_token() {
  for (;;) {
    const std::uint64_t token = rng_();
    if (token != 0) return token;
  }
}

std::optional<MatchReply> RetryingClient::match(JobRequest req) {
  if (req.client_token == 0) req.client_token = fresh_token();
  return attempt_loop<MatchReply>(
      [&](Client& c) { return c.match(req); });
}

std::optional<MatchReply> RetryingClient::pipeline(JobRequest req) {
  if (req.client_token == 0) req.client_token = fresh_token();
  return attempt_loop<MatchReply>(
      [&](Client& c) { return c.pipeline(req); });
}

std::optional<SparsifyReply> RetryingClient::sparsify(JobRequest req) {
  if (req.client_token == 0) req.client_token = fresh_token();
  return attempt_loop<SparsifyReply>(
      [&](Client& c) { return c.sparsify(req); });
}

std::optional<LoadReply> RetryingClient::load(const LoadRequest& req) {
  return attempt_loop<LoadReply>([&](Client& c) { return c.load(req); });
}

std::optional<StatsReply> RetryingClient::stats() {
  return attempt_loop<StatsReply>([&](Client& c) { return c.stats(); });
}

}  // namespace matchsparse::serve
