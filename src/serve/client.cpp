#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace matchsparse::serve {

Client::Client(int fd)
    : transport_(fd >= 0 ? std::make_unique<FdTransport>(fd) : nullptr) {}

Client::Client(std::unique_ptr<Transport> transport)
    : transport_(std::move(transport)) {}

void Client::close() {
  if (transport_) {
    transport_->close();
    transport_.reset();
  }
}

void Client::set_io_timeout_ms(double timeout_ms) {
  io_timeout_ms_ = timeout_ms;
  if (transport_) transport_->set_timeout_ms(timeout_ms);
}

Client Client::connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) return Client(-1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Client(-1);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Client(-1);
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Client(-1);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Client(-1);
  }
  return Client(fd);
}

bool Client::send_bytes(const void* data, std::size_t len) {
  if (!transport_) {
    fail_transport(IoStatus::kReset);
    return false;
  }
  const IoStatus st =
      transport_->send_all(static_cast<const std::uint8_t*>(data), len);
  if (st != IoStatus::kOk) {
    fail_transport(st);
    return false;
  }
  return true;
}

bool Client::send_frame(const Frame& f) {
  const std::vector<std::uint8_t> wire = encode_frame(f);
  return send_bytes(wire.data(), wire.size());
}

std::optional<Frame> Client::recv_frame() {
  std::uint8_t buf[1 << 14];
  for (;;) {
    Frame f;
    const FrameDecoder::Status st = decoder_.next(&f);
    if (st == FrameDecoder::Status::kFrame) return f;
    if (st == FrameDecoder::Status::kError) {
      // Poisoned framing: the peer can no longer be trusted about
      // where any later frame starts.
      fail_transport(IoStatus::kReset);
      return std::nullopt;
    }
    if (!transport_) {
      fail_transport(IoStatus::kReset);
      return std::nullopt;
    }
    const IoResult r = transport_->recv(buf, sizeof(buf));
    if (!r.ok()) {
      fail_transport(r.status);
      return std::nullopt;
    }
    decoder_.feed(buf, r.bytes);
  }
}

std::optional<Frame> Client::round_trip(const Frame& req,
                                        std::uint8_t expect_type) {
  last_error_ = ErrorReply{};
  if (!valid()) {
    fail_transport(IoStatus::kReset);
    return std::nullopt;
  }
  if (!send_frame(req)) return std::nullopt;
  for (;;) {
    auto rep = recv_frame();
    if (!rep) return std::nullopt;
    if (rep->request_id != req.request_id) continue;  // stale reply; skip
    if (rep->type == static_cast<std::uint8_t>(FrameType::kError)) {
      if (auto err = decode_error_reply({rep->payload.data(),
                                         rep->payload.size()})) {
        last_error_ = std::move(*err);
      } else {
        fail_transport(IoStatus::kReset);
      }
      return std::nullopt;
    }
    if (rep->type != expect_type) {
      fail_transport(IoStatus::kReset);  // protocol violation by the server
      return std::nullopt;
    }
    return rep;
  }
}

std::optional<LoadReply> Client::load(const LoadRequest& req) {
  const auto rep =
      round_trip(encode(req, ++next_id_), reply(FrameType::kLoad));
  if (!rep) return std::nullopt;
  auto decoded = decode_load_reply({rep->payload.data(), rep->payload.size()});
  if (!decoded) fail_transport(IoStatus::kReset);
  return decoded;
}

std::optional<SparsifyReply> Client::sparsify(const JobRequest& req) {
  const auto rep = round_trip(encode(FrameType::kSparsify, req, ++next_id_),
                              reply(FrameType::kSparsify));
  if (!rep) return std::nullopt;
  auto decoded =
      decode_sparsify_reply({rep->payload.data(), rep->payload.size()});
  if (!decoded) fail_transport(IoStatus::kReset);
  return decoded;
}

std::optional<MatchReply> Client::match(const JobRequest& req) {
  const auto rep = round_trip(encode(FrameType::kMatch, req, ++next_id_),
                              reply(FrameType::kMatch));
  if (!rep) return std::nullopt;
  auto decoded = decode_match_reply({rep->payload.data(), rep->payload.size()});
  if (!decoded) fail_transport(IoStatus::kReset);
  return decoded;
}

std::optional<MatchReply> Client::pipeline(const JobRequest& req) {
  const auto rep = round_trip(encode(FrameType::kPipeline, req, ++next_id_),
                              reply(FrameType::kPipeline));
  if (!rep) return std::nullopt;
  auto decoded = decode_match_reply({rep->payload.data(), rep->payload.size()});
  if (!decoded) fail_transport(IoStatus::kReset);
  return decoded;
}

namespace {

/// The leading "schema" number of a STATS format-0 document; nullopt
/// when the field is absent (a pre-versioning server).
std::optional<std::uint64_t> parse_schema(const std::string& json) {
  const auto pos = json.find("\"schema\":");
  if (pos == std::string::npos) return std::nullopt;
  std::uint64_t value = 0;
  bool any = false;
  for (std::size_t i = pos + 9; i < json.size(); ++i) {
    const char c = json[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    any = true;
  }
  if (!any) return std::nullopt;
  return value;
}

}  // namespace

std::optional<std::string> Client::stats_body(std::uint8_t format) {
  const auto rep = round_trip(encode_stats(format, ++next_id_),
                              reply(FrameType::kStats));
  if (!rep) return std::nullopt;
  auto decoded = decode_stats_reply({rep->payload.data(), rep->payload.size()});
  if (!decoded) {
    fail_transport(IoStatus::kReset);
    return std::nullopt;
  }
  return std::move(decoded->json);
}

std::optional<StatsReply> Client::stats() {
  auto body = stats_body(kStatsFormatJson);
  if (!body) return std::nullopt;
  // A schema this client does not know means the fields may no longer
  // mean what it thinks: refuse to hand the document out rather than
  // let the caller misread it.
  const auto schema = parse_schema(*body);
  if (schema.has_value() && *schema > kStatsSchemaVersion) {
    last_error_.code = ErrorCode::kUnsupportedSchema;
    last_error_.message = "stats schema " + std::to_string(*schema) +
                          " is newer than supported schema " +
                          std::to_string(kStatsSchemaVersion);
    return std::nullopt;
  }
  StatsReply out;
  out.json = std::move(*body);
  return out;
}

std::optional<std::string> Client::stats_prometheus() {
  return stats_body(kStatsFormatPrometheus);
}

std::optional<std::string> Client::flight_dump() {
  return stats_body(kStatsFormatFlight);
}

std::optional<EvictReply> Client::evict(const std::string& source) {
  EvictRequest req;
  req.source = source;
  const auto rep =
      round_trip(encode(req, ++next_id_), reply(FrameType::kEvict));
  if (!rep) return std::nullopt;
  auto decoded = decode_evict_reply({rep->payload.data(), rep->payload.size()});
  if (!decoded) fail_transport(IoStatus::kReset);
  return decoded;
}

std::optional<CancelReply> Client::cancel(std::uint64_t server_serial) {
  CancelRequest req;
  req.server_serial = server_serial;
  const auto rep =
      round_trip(encode(req, ++next_id_), reply(FrameType::kCancel));
  if (!rep) return std::nullopt;
  auto decoded =
      decode_cancel_reply({rep->payload.data(), rep->payload.size()});
  if (!decoded) fail_transport(IoStatus::kReset);
  return decoded;
}

bool Client::shutdown() {
  const auto rep = round_trip(encode_empty(FrameType::kShutdown, ++next_id_),
                              reply(FrameType::kShutdown));
  return rep.has_value();
}

}  // namespace matchsparse::serve
