#include "serve/diffcheck.hpp"

namespace matchsparse::serve {

RunSignature signature_of(const RunOutcome& outcome,
                          std::string metrics_json) {
  RunSignature sig;
  sig.status = static_cast<std::uint8_t>(outcome.status);
  sig.matched = outcome.result.matching.edges();
  sig.polls = outcome.polls;
  sig.metrics_json = std::move(metrics_json);
  return sig;
}

RunSignature signature_of(const MatchReply& reply) {
  RunSignature sig;
  sig.status = reply.status;
  sig.matched = reply.matched;
  return sig;
}

std::string divergence(const RunSignature& reference,
                       const RunSignature& got) {
  if (got.status != reference.status) {
    return std::string("status ") +
           to_string(static_cast<RunStatus>(got.status)) + " vs " +
           to_string(static_cast<RunStatus>(reference.status));
  }
  if (got.polls != 0 && reference.polls != 0 &&
      got.polls != reference.polls) {
    return "poll count " + std::to_string(got.polls) + " vs " +
           std::to_string(reference.polls);
  }
  if (!got.metrics_json.empty() && !reference.metrics_json.empty() &&
      got.metrics_json != reference.metrics_json) {
    return "per-request metrics snapshot differs";
  }
  if (got.matched.size() != reference.matched.size()) {
    return "matching size " + std::to_string(got.matched.size()) + " vs " +
           std::to_string(reference.matched.size());
  }
  for (std::size_t i = 0; i < reference.matched.size(); ++i) {
    if (!(got.matched[i] == reference.matched[i])) {
      return "matching diverges at edge " + std::to_string(i) + ": (" +
             std::to_string(got.matched[i].u) + "," +
             std::to_string(got.matched[i].v) + ") vs (" +
             std::to_string(reference.matched[i].u) + "," +
             std::to_string(reference.matched[i].v) + ")";
    }
  }
  return std::string();
}

}  // namespace matchsparse::serve
