// matchsparse_serve wire protocol (DESIGN.md §15).
//
// Every message is one util/frame.hpp frame. Request types occupy
// 0x01..0x7f; the matching reply sets the high bit (reply(t) below), and
// kError (0xff) answers any request that could not be served. The
// request id is opaque to the server and echoed verbatim, so a client
// may pipeline requests and pair replies by id (the server processes
// one connection's frames strictly in order).
//
// Payload schemas are fixed-layout little-endian via ByteWriter /
// ByteReader; every decoder enforces the whole-payload rule — trailing
// bytes are as malformed as missing ones and fail the decode.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/edge.hpp"
#include "graph/graph.hpp"
#include "util/frame.hpp"

namespace matchsparse::serve {

enum class FrameType : std::uint8_t {
  kLoad = 0x01,      // install a graph under a source name
  kSparsify = 0x02,  // ensure G_Δ for (source, Δ, seed) is cached
  kMatch = 0x03,     // guarded match, serving from the sparsifier cache
  kPipeline = 0x04,  // guarded end-to-end run, cache bypassed (cold path)
  kStats = 0x05,     // server + cache telemetry snapshot (JSON payload)
  kEvict = 0x06,     // drop a source (and its sparsifiers), or everything
  kShutdown = 0x07,  // ack, then stop accepting and drain
  kCancel = 0x08,    // cancel an in-flight request by server serial
  kError = 0xff,     // reply-only: request could not be served
};

/// Reply tag for a request tag.
constexpr std::uint8_t reply(FrameType t) {
  return static_cast<std::uint8_t>(t) | 0x80;
}

/// Lowercase request-tag name ("load", "match", ...); reply tags and
/// unknown values render as "unknown". Used by telemetry labels and the
/// flight recorder, so the spellings are part of the exposition schema.
const char* to_string(FrameType t);

/// Version of the STATS format-0 JSON document, emitted as the object's
/// first member ("schema"). Bumped whenever a field is removed or
/// changes meaning; adding fields is backward compatible and does NOT
/// bump it. Clients reject documents whose schema they do not know
/// (serve::Client::stats).
inline constexpr std::uint64_t kStatsSchemaVersion = 1;

// STATS request format byte (the optional single-byte payload of a
// kStats request; an empty payload means kStatsFormatJson, which keeps
// pre-format clients byte-compatible).
inline constexpr std::uint8_t kStatsFormatJson = 0;        // flat JSON object
inline constexpr std::uint8_t kStatsFormatPrometheus = 1;  // text exposition
                                                           // v0.0.4
inline constexpr std::uint8_t kStatsFormatFlight = 2;      // flight-recorder
                                                           // ndjson dump

/// Cap on the free-text strings crossing the wire (MatchReply::detail,
/// ErrorReply::message): encoders truncate longer strings so a reply
/// can never outgrow the frame ceiling, and the bound matches
/// ByteReader's default str() limit so a maximal string still decodes
/// on the other side.
inline constexpr std::size_t kMaxWireDetailBytes = 1u << 16;

/// Edge-count ceiling for any frame that carries an edge list. A LOAD
/// at this ceiling admits a perfect matching of the same size, so the
/// cap is derived from the LARGEST frame an edge list appears in — the
/// MATCH reply: 64 fixed bytes, the 4-byte detail length prefix, a
/// maximal detail string, and 8 bytes per edge must all fit
/// kMaxFramePayloadBytes. (The LOAD request's own overhead — a
/// length-prefixed source plus 12 header bytes — is strictly smaller.)
inline constexpr std::uint64_t kMaxWireEdges =
    (kMaxFramePayloadBytes - (64 + 4 + kMaxWireDetailBytes)) /
    (2 * sizeof(VertexId));
static_assert(64 + 4 + kMaxWireDetailBytes +
                      kMaxWireEdges * 2 * sizeof(VertexId) <=
                  kMaxFramePayloadBytes,
              "a maximal MATCH reply must fit one frame");

/// Why a request failed (ErrorReply::code).
enum class ErrorCode : std::uint32_t {
  kBadFrame = 1,      // payload failed to decode (or unknown frame type)
  kUnknownGraph = 2,  // MATCH/SPARSIFY named a source that is not loaded
  kBadConfig = 3,     // beta/eps/threads outside the library's contract
  kShed = 4,          // admission refused: inflight cap reached
  kShuttingDown = 5,  // server is draining; no new work accepted
  kTripped = 6,       // SPARSIFY build hit its deadline/budget (no fallback
                      // exists for a bare build; cache left untouched)
  kTooLarge = 7,      // LOAD graph above the configured vertex/edge caps
  kInternal = 8,
  kUnsupportedSchema = 9,  // client-side: STATS document's schema number
                           // is newer than this client understands
};

const char* to_string(ErrorCode code);

// ---------------------------------------------------------------------------
// Request payloads
// ---------------------------------------------------------------------------

/// LOAD: the graph travels inline (n, then m canonical edges), so the
/// daemon never touches the filesystem on behalf of a client.
struct LoadRequest {
  std::string source;
  VertexId n = 0;
  EdgeList edges;
};

/// The shared job header for SPARSIFY / MATCH / PIPELINE: which cached
/// graph, the paper parameters, and this request's QoS envelope. A zero
/// deadline/budget means unlimited (same convention as RunLimits).
struct JobRequest {
  std::string source;
  VertexId beta = 2;
  double eps = 0.2;
  std::uint64_t seed = 0;
  /// Sparsifier lanes: 1 = legacy serial stream, 0 / >=2 = fused
  /// parallel path (deterministic per (g, Δ, seed) at any lane count).
  std::uint64_t threads = 1;
  double deadline_ms = 0.0;
  std::uint64_t mem_budget_bytes = 0;
  std::uint8_t degrade = 2;  // 0 off, 1 eps, 2 maximal (RunLimits order)
  std::uint8_t matcher = 0;  // 0 serial, 1 frontier
  /// Test hook, forwarded to RunLimits::cancel_after_polls: trips a
  /// deterministic kCancelled on the N-th guard poll of the first
  /// attempt. 0 = off.
  std::uint64_t cancel_after_polls = 0;
  /// Idempotency token (protocol rev 2). 0 = none: the request is
  /// encoded in the rev-1 layout, byte-identical to pre-token clients,
  /// and the server executes it unconditionally. Nonzero: appended as a
  /// trailing u64; the server's dedup window replays the completed
  /// reply for a retried token instead of executing the job twice
  /// (DESIGN.md §17). RetryingClient draws a fresh token per logical
  /// request and reuses it across every retry of that request.
  std::uint64_t client_token = 0;
};

struct EvictRequest {
  std::string source;  // empty = evict everything
};

struct CancelRequest {
  std::uint64_t server_serial = 0;  // MatchReply::server_serial of the target
};

// ---------------------------------------------------------------------------
// Reply payloads
// ---------------------------------------------------------------------------

struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  /// Backoff hint in milliseconds, meaningful on retryable refusals
  /// (kShed): "try again no sooner than this". 0 = no hint. Encoded as
  /// a trailing f64 (protocol rev 2); decoders accept the rev-1 layout
  /// without it, so old servers' errors still parse.
  double retry_after_ms = 0.0;
};

struct LoadReply {
  VertexId n = 0;
  EdgeIndex m = 0;
  std::uint64_t bytes_charged = 0;
  std::uint8_t replaced = 0;  // 1 when an older graph of this name was evicted
};

struct SparsifyReply {
  VertexId delta = 0;
  EdgeIndex edges = 0;
  std::uint8_t cache_hit = 0;
  double build_ms = 0.0;
  std::uint64_t bytes_charged = 0;  // 0 on a hit or when caching was refused
};

/// MATCH and PIPELINE share this shape (PIPELINE always reports
/// cache_hit = 0 — it is the deliberately cold path).
struct MatchReply {
  std::uint8_t status = 0;       // RunStatus numeric value
  std::uint8_t stop_reason = 0;  // guard::StopReason numeric value
  std::uint8_t partial = 0;
  std::uint8_t cache_hit = 0;
  double eps_effective = 0.0;
  double guarantee = 0.0;
  VertexId size_floor = 0;
  VertexId delta = 0;
  EdgeIndex sparsifier_edges = 0;
  std::uint64_t polls = 0;
  std::uint64_t mem_peak_bytes = 0;
  /// Server-side serial of this request — the handle kCancel takes and
  /// the suffix of any per-request manifest/trace export (.req<serial>).
  std::uint64_t server_serial = 0;
  /// The matching, canonical (u < v) sorted pairs.
  EdgeList matched;
  std::string detail;
};

/// The STATS reply is one length-prefixed text body in whichever format
/// the request asked for: a flat JSON object (format 0; schema in
/// DESIGN.md §15/§16), a Prometheus text exposition (format 1), or a
/// flight-recorder ndjson dump (format 2).
struct StatsReply {
  std::string json;
};

struct EvictReply {
  std::uint32_t entries = 0;
  std::uint64_t bytes_freed = 0;
};

struct CancelReply {
  std::uint8_t found = 0;  // 1 when the serial named an in-flight request
};

// ---------------------------------------------------------------------------
// Codecs. encode_* produce a full Frame (payload + tags); decode_* parse
// a payload and return nullopt on any violation of the schema, including
// trailing bytes.
// ---------------------------------------------------------------------------

Frame encode(const LoadRequest& r, std::uint64_t request_id);
Frame encode(FrameType job_type, const JobRequest& r, std::uint64_t request_id);
Frame encode(const EvictRequest& r, std::uint64_t request_id);
Frame encode(const CancelRequest& r, std::uint64_t request_id);
/// STATS (format 0) / SHUTDOWN carry no payload.
Frame encode_empty(FrameType t, std::uint64_t request_id);
/// STATS with an explicit format byte. kStatsFormatJson is encoded as
/// an EMPTY payload — byte-identical to the pre-format wire frame — so
/// old servers keep answering new clients' default requests.
Frame encode_stats(std::uint8_t format, std::uint64_t request_id);

Frame encode_reply(FrameType req_type, const LoadReply& r, std::uint64_t id);
Frame encode_reply(FrameType req_type, const SparsifyReply& r,
                   std::uint64_t id);
Frame encode_reply(FrameType req_type, const MatchReply& r, std::uint64_t id);
Frame encode_reply(FrameType req_type, const StatsReply& r, std::uint64_t id);
Frame encode_reply(FrameType req_type, const EvictReply& r, std::uint64_t id);
Frame encode_reply(FrameType req_type, const CancelReply& r, std::uint64_t id);
Frame encode_error(const ErrorReply& r, std::uint64_t id);

std::optional<LoadRequest> decode_load(std::span<const std::uint8_t> payload);
std::optional<JobRequest> decode_job(std::span<const std::uint8_t> payload);
std::optional<EvictRequest> decode_evict(
    std::span<const std::uint8_t> payload);
std::optional<CancelRequest> decode_cancel(
    std::span<const std::uint8_t> payload);
/// STATS request: empty payload → kStatsFormatJson; one known format
/// byte → that format; anything else (unknown byte, trailing bytes) is
/// malformed.
std::optional<std::uint8_t> decode_stats_request(
    std::span<const std::uint8_t> payload);

std::optional<LoadReply> decode_load_reply(
    std::span<const std::uint8_t> payload);
std::optional<SparsifyReply> decode_sparsify_reply(
    std::span<const std::uint8_t> payload);
std::optional<MatchReply> decode_match_reply(
    std::span<const std::uint8_t> payload);
std::optional<StatsReply> decode_stats_reply(
    std::span<const std::uint8_t> payload);
std::optional<EvictReply> decode_evict_reply(
    std::span<const std::uint8_t> payload);
std::optional<CancelReply> decode_cancel_reply(
    std::span<const std::uint8_t> payload);
std::optional<ErrorReply> decode_error_reply(
    std::span<const std::uint8_t> payload);

}  // namespace matchsparse::serve
