// The matchsparse_serve daemon core (DESIGN.md §15).
//
// A Server owns one GraphCache and serves the serve/protocol.hpp frame
// protocol over any number of connections: a unix-domain listener, an
// optional loopback TCP listener, and in-process socketpair connections
// (connect_in_process()) — the test harness runs client and server in
// one process over the latter, so the end-to-end tests exercise the
// exact production byte stream without touching the filesystem.
//
// Threading model: one accept thread per listener, one session thread
// per connection, and each connection's frames processed strictly in
// order (pipelining works — replies come back in request order, paired
// by the echoed request id). Every job request (SPARSIFY/MATCH/PIPELINE)
// runs inside its own guard::RunContext, so per-request metrics, traces
// and guard trips never bleed between concurrent connections; the
// request's QoS envelope (deadline / memory budget / degradation mode)
// comes from the frame itself.
//
// Admission control:
//   - at most `max_inflight` jobs run concurrently; the next one is
//     refused with kShed (cheap, immediate — the client retries or
//     backs off),
//   - a request's nonzero memory budget is clamped to what the cache
//     cap has not already promised to concurrent requests (min 1 byte),
//     so an over-committed server sheds load through the degradation
//     ladder — the clamped run trips kBudget and degrades — instead of
//     overcommitting RAM.
//
// Shutdown: a SHUTDOWN frame (or stop()) flips the server into draining
// mode — new jobs are refused with kShuttingDown, in-flight contexts are
// cancelled (the ladder's parent-linked rung guards observe it), and
// wait() returns so the owner can stop() and join.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/api.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/telemetry.hpp"
#include "serve/transport.hpp"

namespace matchsparse::guard {
class RunContext;
}

namespace matchsparse::serve {

struct ServerOptions {
  /// Unix-domain socket path; empty = no unix listener (in-process
  /// connections still work). A stale socket file is unlinked first.
  std::string socket_path;
  /// Loopback TCP port; -1 = no TCP listener, 0 = ephemeral (read the
  /// bound port back with Server::tcp_port()).
  int tcp_port = -1;
  /// GraphCache capacity, and the pool the budget clamp promises from.
  std::uint64_t cache_bytes = 256ull << 20;
  /// Concurrent job ceiling before kShed; 0 = unlimited.
  std::uint32_t max_inflight = 8;
  /// LOAD caps (kTooLarge beyond these).
  VertexId max_vertices = 1u << 27;
  EdgeIndex max_edges = 1ull << 32;
  /// Per-job `threads` ceiling (kBadConfig beyond it): the lane count
  /// sizes per-lane working arrays in the parallel backends, so a
  /// client must not pick it freely. 0 (one lane per pool worker) is
  /// always admitted.
  std::uint64_t max_job_threads = 256;
  /// When non-empty, every job request writes its per-request metrics
  /// snapshot to "<metrics_prefix>.req<serial>.json" (the serve analogue
  /// of the CLI's --metrics=<path> per-request manifests).
  std::string metrics_prefix;
  /// When non-empty, per-request Chrome traces go to
  /// "<trace_prefix>.req<serial>.json".
  std::string trace_prefix;
  /// Fold each request's registry into the global one on completion
  /// (aggregate exports keep working); tests disable it for isolation.
  bool publish_request_metrics = true;
  /// Flight-recorder ring slots (clamped >= 1; ~80 bytes per slot,
  /// allocated once at construction).
  std::size_t flight_capacity = 256;
  /// When non-empty, every guard-tripped request overwrites this file
  /// with the full flight-ring ndjson dump (the incident artifact).
  std::string flight_path;
  /// Master switch for the serving-path latency histograms and outcome
  /// counters (the STATS format=1 exposition body). The flight recorder
  /// stays on regardless — see serve/telemetry.hpp.
  bool telemetry = true;
  /// Per-session read deadline in ms — the idle-session reaper: a
  /// connection that sends nothing for this long is dropped, so a
  /// stalled or half-open peer cannot pin a session thread forever.
  /// 0 = off (the legacy fully-blocking behavior; in-process test
  /// harnesses that park idle control connections rely on it).
  double session_idle_timeout_ms = 0.0;
  /// Per-send deadline in ms for reply frames: a peer that stops
  /// draining its socket while a reply is in flight loses the
  /// connection instead of wedging the session in send(). 0 = off.
  double session_write_timeout_ms = 0.0;
  /// Backoff hint stamped on kShed refusals (ErrorReply::retry_after_ms);
  /// RetryingClient sleeps at least this long before the retry.
  double shed_retry_after_ms = 20.0;
  /// Capacity of the idempotency-token dedup window (completed replies
  /// kept for replay, evicted LRU). 0 disables token dedup entirely —
  /// tokens are then ignored and every request executes.
  std::size_t dedup_window = 1024;
  /// Chaos hook: when set, every session's transport is passed through
  /// this wrapper before serving (the chaos soak injects a seeded
  /// FaultTransport on the server side of in-process connections).
  std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
      transport_wrapper;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens the configured listeners and their accept threads. False on
  /// bind/listen failure with a diagnostic in *error. With no listeners
  /// configured this is a no-op success (in-process serving only).
  bool start(std::string* error);

  /// Blocks until a SHUTDOWN frame arrives or stop() is called.
  void wait();

  /// Drain and join: refuse new jobs, cancel in-flight contexts, wake
  /// blocked sessions, join every thread. Idempotent.
  void stop();

  /// One end of a fresh socketpair whose other end is served by a new
  /// session thread; the caller owns (and must close) the returned fd.
  /// -1 on failure or when already shutting down.
  int connect_in_process();

  /// Port actually bound (ephemeral support); -1 when no TCP listener.
  int tcp_port() const { return bound_tcp_port_; }

  bool shutting_down() const {
    return stopping_.load(std::memory_order_acquire);
  }

  GraphCache& cache() { return cache_; }

  /// Process-lifetime counters (monotonic except inflight); the struct
  /// itself lives in serve/telemetry.hpp.
  using Telemetry = ServerCounters;
  Telemetry telemetry() const;

  /// The live telemetry plane: latency histograms, outcome counters,
  /// the flight recorder, and the Prometheus renderer (DESIGN.md §16).
  ServeTelemetry& telemetry_plane() { return telemetry_plane_; }
  const ServeTelemetry& telemetry_plane() const { return telemetry_plane_; }

  /// The flight ring as ndjson, newest state at call time — what
  /// SIGUSR1 in the daemon tool and STATS format=2 hand out.
  std::string flight_ndjson() const {
    return telemetry_plane_.flight().dump_ndjson();
  }

 private:
  struct Inflight;

  void accept_loop(int listen_fd);
  void session(int fd);
  /// False (with fd closed) when refused because the server is draining.
  bool spawn_session(int fd);
  void reap_finished_locked();
  /// Flip into draining mode: refuse new jobs, cancel in-flight
  /// contexts. Does NOT join or wake wait() (a session thread calls
  /// this on SHUTDOWN and must get its ack out before the owner's
  /// stop() severs the session; stop() joins from the owner thread).
  void begin_drain();
  /// Wake wait()ers; called after begin_drain() once it is safe for
  /// the owner to proceed to stop().
  void notify_stop();

  bool send_frame(Transport& t, const Frame& f);
  bool send_error(Transport& t, std::uint64_t id, ErrorCode code,
                  const std::string& message, double retry_after_ms = 0.0);

  /// Frame dispatch; false ⇒ the connection must be dropped (send
  /// failure or poisoned decoder — never a mere request error).
  /// `queue_ms` is how long the frame's bytes sat decoded-but-undispatched
  /// on the session (pipelined frames queue behind their predecessors).
  bool handle_frame(Transport& t, const Frame& f, double queue_ms);
  bool handle_load(Transport& t, const Frame& f);
  bool handle_job(Transport& t, const Frame& f, double queue_ms);
  /// The old handle_job body; fills `rec` (flight record) as it goes.
  bool handle_job_impl(Transport& t, const Frame& f, FlightRecord* rec);
  bool handle_stats(Transport& t, const Frame& f);
  bool handle_evict(Transport& t, const Frame& f);
  bool handle_cancel(Transport& t, const Frame& f);
  bool handle_shutdown(Transport& t, const Frame& f);

  MatchReply run_match(const JobRequest& req,
                       const std::shared_ptr<const Graph>& graph,
                       std::uint64_t serial, std::uint64_t budget,
                       bool use_cache);
  bool run_sparsify(const JobRequest& req,
                    const std::shared_ptr<const Graph>& graph,
                    std::uint64_t budget, SparsifyReply* reply,
                    ErrorReply* error);

  /// Clamps a nonzero requested budget to the unpromised remainder of
  /// the cache cap (min 1 byte). 0 (unlimited) passes through.
  std::uint64_t grant_budget(std::uint64_t requested);
  void return_budget(std::uint64_t granted);

  void export_request_artifacts(guard::RunContext& ctx, std::uint64_t serial);

  /// Overwrites opts_.flight_path with the ring dump when `rec` ended
  /// on a guard trip (serialized; concurrent trips don't interleave).
  void maybe_dump_flight(const FlightRecord& rec);

  ServerOptions opts_;
  GraphCache cache_;
  ServeTelemetry telemetry_plane_;
  std::mutex flight_dump_mu_;

  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::mutex join_mu_;    // serializes stop()'s whole teardown sequence
  bool stopped_ = false;  // teardown ran to completion; guarded by join_mu_

  std::vector<int> listen_fds_;
  std::vector<std::thread> accept_threads_;
  int bound_tcp_port_ = -1;

  struct SessionSlot {
    std::thread thread;
    int fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex sessions_mu_;
  std::vector<SessionSlot> sessions_;

  std::mutex inflight_mu_;
  std::unordered_map<std::uint64_t, guard::RunContext*> inflight_;
  std::uint64_t promised_budget_ = 0;

  // -------------------------------------------------------------------
  // Idempotency-token dedup window (DESIGN.md §17). One entry per
  // token: kRunning while the first arrival executes, kDone with the
  // completed reply frame for replay, gone once evicted LRU. The
  // find-or-insert under dedup_mu_ is the single-execution
  // serialization point — a retry that lands on ANY connection while
  // the original is still in flight waits on the entry's cv and gets
  // the same reply, never a second execution.
  struct TokenEntry {
    enum class State : std::uint8_t { kRunning, kDone, kAborted };
    State state = State::kRunning;
    std::condition_variable cv;  // guarded by dedup_mu_
    Frame reply;                 // valid when kDone; request id re-stamped
                                 // per replay
  };
  /// Find-or-insert for a nonzero token. *owner true ⇒ this thread must
  /// execute the job and later complete_token()/abort_token().
  std::shared_ptr<TokenEntry> claim_token(std::uint64_t token, bool* owner);
  /// Publish the completed reply frame BEFORE it is sent, flip kDone,
  /// wake waiters, and evict beyond opts_.dedup_window (LRU) — so a
  /// reset mid-reply still replays on retry.
  void complete_token(std::uint64_t token,
                      const std::shared_ptr<TokenEntry>& entry,
                      const Frame& reply_frame);
  /// The owner's attempt was refused before execution: remove the entry
  /// so a retry starts fresh, and fail waiters retryably.
  void abort_token(std::uint64_t token,
                   const std::shared_ptr<TokenEntry>& entry);
  /// A follower's path: wait out a kRunning entry, then replay (kDone)
  /// or refuse retryably (kAborted / drain).
  bool serve_token_entry(Transport& t, const Frame& f,
                         const std::shared_ptr<TokenEntry>& entry,
                         FlightRecord* rec);

  std::mutex dedup_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<TokenEntry>> dedup_;
  std::deque<std::uint64_t> dedup_lru_;  // kDone tokens, oldest first

  std::atomic<std::uint64_t> next_serial_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> budget_clamped_{0};
  std::atomic<std::uint64_t> tripped_builds_{0};
  std::atomic<std::uint64_t> cancels_delivered_{0};
  std::atomic<std::uint64_t> jobs_executed_{0};
  std::atomic<std::uint64_t> dedup_replays_{0};
  std::atomic<std::uint64_t> dedup_waits_{0};
  std::atomic<std::uint64_t> sessions_reaped_{0};
  std::atomic<std::uint32_t> inflight_count_{0};
};

}  // namespace matchsparse::serve
