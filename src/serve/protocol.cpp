#include "serve/protocol.hpp"

#include <string_view>

#include "util/common.hpp"

namespace matchsparse::serve {

namespace {

/// Free-text fields go out truncated to the wire cap; the decoders'
/// matching str() bound would otherwise fail the whole reply over an
/// overlong diagnostic.
std::string_view wire_text(const std::string& s) {
  return std::string_view(s).substr(0, kMaxWireDetailBytes);
}

Frame make_frame(std::uint8_t type, std::uint64_t id, ByteWriter&& w) {
  Frame f;
  f.type = type;
  f.request_id = id;
  f.payload = w.take();
  return f;
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kLoad:
      return "load";
    case FrameType::kSparsify:
      return "sparsify";
    case FrameType::kMatch:
      return "match";
    case FrameType::kPipeline:
      return "pipeline";
    case FrameType::kStats:
      return "stats";
    case FrameType::kEvict:
      return "evict";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kCancel:
      return "cancel";
    case FrameType::kError:
      return "error";
  }
  return "unknown";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame:
      return "bad-frame";
    case ErrorCode::kUnknownGraph:
      return "unknown-graph";
    case ErrorCode::kBadConfig:
      return "bad-config";
    case ErrorCode::kShed:
      return "shed";
    case ErrorCode::kShuttingDown:
      return "shutting-down";
    case ErrorCode::kTripped:
      return "tripped";
    case ErrorCode::kTooLarge:
      return "too-large";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kUnsupportedSchema:
      return "unsupported-schema";
  }
  return "unknown";
}

Frame encode(const LoadRequest& r, std::uint64_t request_id) {
  MS_CHECK_MSG(r.edges.size() <= kMaxWireEdges, "graph too large for a frame");
  ByteWriter w;
  w.str(r.source);
  w.u32(r.n);
  w.u64(r.edges.size());
  for (const Edge& e : r.edges) {
    w.u32(e.u);
    w.u32(e.v);
  }
  return make_frame(static_cast<std::uint8_t>(FrameType::kLoad), request_id,
                    std::move(w));
}

Frame encode(FrameType job_type, const JobRequest& r,
             std::uint64_t request_id) {
  ByteWriter w;
  w.str(r.source);
  w.u32(r.beta);
  w.f64(r.eps);
  w.u64(r.seed);
  w.u64(r.threads);
  w.f64(r.deadline_ms);
  w.u64(r.mem_budget_bytes);
  w.u8(r.degrade);
  w.u8(r.matcher);
  w.u64(r.cancel_after_polls);
  // Token 0 stays on the rev-1 wire layout so pre-token servers keep
  // decoding default-encoded jobs (and the golden-bytes test holds).
  if (r.client_token != 0) w.u64(r.client_token);
  return make_frame(static_cast<std::uint8_t>(job_type), request_id,
                    std::move(w));
}

Frame encode(const EvictRequest& r, std::uint64_t request_id) {
  ByteWriter w;
  w.str(r.source);
  return make_frame(static_cast<std::uint8_t>(FrameType::kEvict), request_id,
                    std::move(w));
}

Frame encode(const CancelRequest& r, std::uint64_t request_id) {
  ByteWriter w;
  w.u64(r.server_serial);
  return make_frame(static_cast<std::uint8_t>(FrameType::kCancel), request_id,
                    std::move(w));
}

Frame encode_empty(FrameType t, std::uint64_t request_id) {
  Frame f;
  f.type = static_cast<std::uint8_t>(t);
  f.request_id = request_id;
  return f;
}

Frame encode_stats(std::uint8_t format, std::uint64_t request_id) {
  if (format == kStatsFormatJson) {
    // The legacy frame: pre-format servers only understand the empty
    // payload, and the default format must keep working against them.
    return encode_empty(FrameType::kStats, request_id);
  }
  ByteWriter w;
  w.u8(format);
  return make_frame(static_cast<std::uint8_t>(FrameType::kStats), request_id,
                    std::move(w));
}

Frame encode_reply(FrameType req_type, const LoadReply& r, std::uint64_t id) {
  ByteWriter w;
  w.u32(r.n);
  w.u64(r.m);
  w.u64(r.bytes_charged);
  w.u8(r.replaced);
  return make_frame(reply(req_type), id, std::move(w));
}

Frame encode_reply(FrameType req_type, const SparsifyReply& r,
                   std::uint64_t id) {
  ByteWriter w;
  w.u32(r.delta);
  w.u64(r.edges);
  w.u8(r.cache_hit);
  w.f64(r.build_ms);
  w.u64(r.bytes_charged);
  return make_frame(reply(req_type), id, std::move(w));
}

Frame encode_reply(FrameType req_type, const MatchReply& r, std::uint64_t id) {
  ByteWriter w;
  w.u8(r.status);
  w.u8(r.stop_reason);
  w.u8(r.partial);
  w.u8(r.cache_hit);
  w.f64(r.eps_effective);
  w.f64(r.guarantee);
  w.u32(r.size_floor);
  w.u32(r.delta);
  w.u64(r.sparsifier_edges);
  w.u64(r.polls);
  w.u64(r.mem_peak_bytes);
  w.u64(r.server_serial);
  MS_CHECK_MSG(r.matched.size() <= kMaxWireEdges,
               "matching too large for a frame");
  w.u32(static_cast<std::uint32_t>(r.matched.size()));
  for (const Edge& e : r.matched) {
    w.u32(e.u);
    w.u32(e.v);
  }
  w.str(wire_text(r.detail));
  return make_frame(reply(req_type), id, std::move(w));
}

Frame encode_reply(FrameType req_type, const StatsReply& r, std::uint64_t id) {
  ByteWriter w;
  w.str(r.json);
  return make_frame(reply(req_type), id, std::move(w));
}

Frame encode_reply(FrameType req_type, const EvictReply& r, std::uint64_t id) {
  ByteWriter w;
  w.u32(r.entries);
  w.u64(r.bytes_freed);
  return make_frame(reply(req_type), id, std::move(w));
}

Frame encode_reply(FrameType req_type, const CancelReply& r,
                   std::uint64_t id) {
  ByteWriter w;
  w.u8(r.found);
  return make_frame(reply(req_type), id, std::move(w));
}

Frame encode_error(const ErrorReply& r, std::uint64_t id) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(r.code));
  w.str(wire_text(r.message));
  w.f64(r.retry_after_ms);
  return make_frame(static_cast<std::uint8_t>(FrameType::kError), id,
                    std::move(w));
}

std::optional<LoadRequest> decode_load(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  LoadRequest req;
  std::uint64_t m = 0;
  if (!r.str(&req.source) || !r.u32(&req.n) || !r.u64(&m)) {
    return std::nullopt;
  }
  // Pre-size check before the allocation: a malicious count must fail,
  // not reserve 64 GiB.
  if (m > kMaxWireEdges || m * 2 * sizeof(VertexId) > r.remaining()) {
    return std::nullopt;
  }
  req.edges.reserve(static_cast<std::size_t>(m));
  for (std::uint64_t i = 0; i < m; ++i) {
    Edge e;
    if (!r.u32(&e.u) || !r.u32(&e.v)) return std::nullopt;
    req.edges.push_back(e);
  }
  if (!r.done()) return std::nullopt;
  return req;
}

std::optional<JobRequest> decode_job(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  JobRequest req;
  if (!r.str(&req.source) || !r.u32(&req.beta) || !r.f64(&req.eps) ||
      !r.u64(&req.seed) || !r.u64(&req.threads) || !r.f64(&req.deadline_ms) ||
      !r.u64(&req.mem_budget_bytes) || !r.u8(&req.degrade) ||
      !r.u8(&req.matcher) || !r.u64(&req.cancel_after_polls)) {
    return std::nullopt;
  }
  // Rev 1 ends here; rev 2 appends exactly the token. Anything else
  // trailing is as malformed as ever (whole-payload rule).
  if (r.remaining() != 0 && !r.u64(&req.client_token)) return std::nullopt;
  if (!r.done()) return std::nullopt;
  return req;
}

std::optional<EvictRequest> decode_evict(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  EvictRequest req;
  if (!r.str(&req.source) || !r.done()) return std::nullopt;
  return req;
}

std::optional<CancelRequest> decode_cancel(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  CancelRequest req;
  if (!r.u64(&req.server_serial) || !r.done()) return std::nullopt;
  return req;
}

std::optional<std::uint8_t> decode_stats_request(
    std::span<const std::uint8_t> payload) {
  if (payload.empty()) return kStatsFormatJson;
  ByteReader r(payload);
  std::uint8_t format = 0;
  if (!r.u8(&format) || !r.done()) return std::nullopt;
  if (format != kStatsFormatJson && format != kStatsFormatPrometheus &&
      format != kStatsFormatFlight) {
    return std::nullopt;
  }
  return format;
}

std::optional<LoadReply> decode_load_reply(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  LoadReply rep;
  if (!r.u32(&rep.n) || !r.u64(&rep.m) || !r.u64(&rep.bytes_charged) ||
      !r.u8(&rep.replaced) || !r.done()) {
    return std::nullopt;
  }
  return rep;
}

std::optional<SparsifyReply> decode_sparsify_reply(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  SparsifyReply rep;
  if (!r.u32(&rep.delta) || !r.u64(&rep.edges) || !r.u8(&rep.cache_hit) ||
      !r.f64(&rep.build_ms) || !r.u64(&rep.bytes_charged) || !r.done()) {
    return std::nullopt;
  }
  return rep;
}

std::optional<MatchReply> decode_match_reply(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  MatchReply rep;
  std::uint32_t matched = 0;
  if (!r.u8(&rep.status) || !r.u8(&rep.stop_reason) || !r.u8(&rep.partial) ||
      !r.u8(&rep.cache_hit) || !r.f64(&rep.eps_effective) ||
      !r.f64(&rep.guarantee) || !r.u32(&rep.size_floor) ||
      !r.u32(&rep.delta) || !r.u64(&rep.sparsifier_edges) ||
      !r.u64(&rep.polls) || !r.u64(&rep.mem_peak_bytes) ||
      !r.u64(&rep.server_serial) || !r.u32(&matched)) {
    return std::nullopt;
  }
  if (static_cast<std::uint64_t>(matched) * 2 * sizeof(VertexId) >
      r.remaining()) {
    return std::nullopt;
  }
  rep.matched.reserve(matched);
  for (std::uint32_t i = 0; i < matched; ++i) {
    Edge e;
    if (!r.u32(&e.u) || !r.u32(&e.v)) return std::nullopt;
    rep.matched.push_back(e);
  }
  if (!r.str(&rep.detail) || !r.done()) return std::nullopt;
  return rep;
}

std::optional<StatsReply> decode_stats_reply(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  StatsReply rep;
  if (!r.str(&rep.json, 1u << 20) || !r.done()) return std::nullopt;
  return rep;
}

std::optional<EvictReply> decode_evict_reply(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  EvictReply rep;
  if (!r.u32(&rep.entries) || !r.u64(&rep.bytes_freed) || !r.done()) {
    return std::nullopt;
  }
  return rep;
}

std::optional<CancelReply> decode_cancel_reply(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  CancelReply rep;
  if (!r.u8(&rep.found) || !r.done()) return std::nullopt;
  return rep;
}

std::optional<ErrorReply> decode_error_reply(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ErrorReply rep;
  std::uint32_t code = 0;
  if (!r.u32(&code) || !r.str(&rep.message)) return std::nullopt;
  // Rev-1 servers end the payload at the message; rev 2 appends the
  // retry-after hint.
  if (r.remaining() != 0 && !r.f64(&rep.retry_after_ms)) return std::nullopt;
  if (!r.done()) return std::nullopt;
  rep.code = static_cast<ErrorCode>(code);
  return rep;
}

}  // namespace matchsparse::serve
