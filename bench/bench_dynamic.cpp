// E9  — Theorem 3.5: fully-dynamic (1+ε)-MCM with worst-case update work
//        O((β/ε³)·log(1/ε)), deterministic work bound, approximation
//        w.h.p. against an ADAPTIVE adversary; compared to the
//        Barenboim–Maimon-style O(deg)-per-update maximal baseline.
// E10 — Lemma 3.4 (Gupta–Peng stability): a (1+ε)-matching stays
//        (1+2ε+2ε')-approximate across ε'·|M| adversarial deletions.
#include "bench_common.hpp"

#include "dynamic/adversary.hpp"
#include "dynamic/baseline_maximal.hpp"
#include "dynamic/oblivious_matcher.hpp"
#include "dynamic/window_matcher.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;

namespace {

struct RunStats {
  StreamingStats ratio;
  std::uint64_t max_work = 0;
  std::uint64_t total_work = 0;
  std::size_t overruns = 0;
};

template <typename Algo>
RunStats run_script(Algo& algo, const UpdateScript& script,
                    std::size_t samples) {
  RunStats out;
  const std::size_t every = std::max<std::size_t>(1, script.size() / samples);
  std::size_t step = 0;
  for (const Update& u : script) {
    if (u.insert) {
      algo.insert_edge(u.edge.u, u.edge.v);
    } else {
      algo.delete_edge(u.edge.u, u.edge.v);
    }
    if (++step % every == 0) {
      const VertexId opt = reference_mcm_size(algo.graph().snapshot());
      if (opt > 0) {
        out.ratio.add(static_cast<double>(opt) /
                      std::max<VertexId>(1, algo.matching().size()));
      }
    }
  }
  out.max_work = algo.max_update_work();
  out.total_work = algo.total_work();
  return out;
}

void table_oblivious() {
  Table table("E9.a  oblivious unit-disk churn (n=2000, ~20k updates)",
              {"algorithm", "eps", "mean opt/alg", "worst opt/alg",
               "max work/upd", "mean work/upd"});
  const VertexId n = 2000;
  Rng rng(3);
  const double radius = gen::unit_disk_radius_for_degree(n, 16.0);
  const UpdateScript script = unit_disk_churn(n, radius, n / 2, 1500, rng);

  for (double eps : {0.5, 0.3}) {
    WindowMatcherOptions opt;
    opt.beta = 5;
    opt.eps = eps;
    opt.delta_scale = 0.5;
    WindowMatcher wm(n, opt);
    const RunStats s = run_script(wm, script, 24);
    table.row()
        .cell("window (Thm 3.5)")
        .cell(eps, 2)
        .cell(s.ratio.mean(), 4)
        .cell(s.ratio.max(), 4)
        .cell(s.max_work)
        .cell(static_cast<double>(s.total_work) / script.size(), 1);
  }
  {
    ObliviousDynamicMatcher oblivious(n, 5, 0.3, 99, 0.5);
    const RunStats s = run_script(oblivious, script, 24);
    table.row()
        .cell("oblivious scheme (3.3 intro)")
        .cell(0.3, 2)
        .cell(s.ratio.mean(), 4)
        .cell(s.ratio.max(), 4)
        .cell(s.max_work)
        .cell(static_cast<double>(s.total_work) / script.size(), 1);
  }
  {
    BaselineDynamicMaximal base(n);
    const RunStats s = run_script(base, script, 24);
    table.row()
        .cell("BM-style maximal")
        .cell("-")
        .cell(s.ratio.mean(), 4)
        .cell(s.ratio.max(), 4)
        .cell(s.max_work)
        .cell(static_cast<double>(s.total_work) / script.size(), 1);
  }
  table.print();
  std::printf("# shape check: the window matcher holds opt/alg near 1+eps "
              "while the maximal baseline drifts toward its 2-approx "
              "guarantee; window work/update is (beta,eps)-bounded, "
              "baseline worst-case work tracks vertex degree.\n");
}

void table_adaptive() {
  Table table("E9.b  ADAPTIVE adversary (deletes current matched edges)",
              {"algorithm", "mean opt/alg", "worst opt/alg",
               "max work/upd", "rebuilds/overruns"});
  const VertexId n = 600;
  Rng rng(5);
  const Graph host = gen::clique_union(n, 12, 4, rng);

  {
    WindowMatcherOptions opt;
    opt.beta = 4;
    opt.eps = 0.4;
    opt.delta_scale = 0.5;
    WindowMatcher wm(n, opt);
    wm.bulk_load(host.edge_list());
    MatchedEdgeDeleter adversary(11);
    StreamingStats ratio;
    for (int step = 0; step < 2500; ++step) {
      const Update u = adversary.next(wm.graph(), wm.matching());
      if (u.insert) {
        wm.insert_edge(u.edge.u, u.edge.v);
      } else {
        wm.delete_edge(u.edge.u, u.edge.v);
      }
      if (step % 100 == 0) {
        const VertexId opt_size = reference_mcm_size(wm.graph().snapshot());
        if (opt_size > 0) {
          ratio.add(static_cast<double>(opt_size) /
                    std::max<VertexId>(1, wm.matching().size()));
        }
      }
    }
    char ro[32];
    std::snprintf(ro, sizeof(ro), "%zu/%zu", wm.rebuilds(),
                  wm.window_overruns());
    table.row()
        .cell("window (Thm 3.5)")
        .cell(ratio.mean(), 4)
        .cell(ratio.max(), 4)
        .cell(wm.max_update_work())
        .cell(ro);
  }
  {
    // The oblivious scheme facing the adaptive adversary: its marks
    // persist across updates and leak through the output — the exact
    // vulnerability the Theorem 3.5 window scheme removes.
    ObliviousDynamicMatcher oblivious(n, 4, 0.4, 31, 0.5);
    for (const Edge& e : host.edge_list()) oblivious.insert_edge(e.u, e.v);
    MatchedEdgeDeleter adversary(11);
    StreamingStats ratio;
    for (int step = 0; step < 2500; ++step) {
      const Update u = adversary.next(oblivious.graph(), oblivious.matching());
      if (u.insert) {
        oblivious.insert_edge(u.edge.u, u.edge.v);
      } else {
        oblivious.delete_edge(u.edge.u, u.edge.v);
      }
      if (step % 100 == 0) {
        const VertexId opt_size =
            reference_mcm_size(oblivious.graph().snapshot());
        if (opt_size > 0) {
          ratio.add(static_cast<double>(opt_size) /
                    std::max<VertexId>(1, oblivious.matching().size()));
        }
      }
    }
    table.row()
        .cell("oblivious scheme (3.3 intro)")
        .cell(ratio.mean(), 4)
        .cell(ratio.max(), 4)
        .cell(oblivious.max_update_work())
        .cell("-");
  }
  {
    BaselineDynamicMaximal base(n);
    for (const Edge& e : host.edge_list()) base.insert_edge(e.u, e.v);
    MatchedEdgeDeleter adversary(11);
    StreamingStats ratio;
    for (int step = 0; step < 2500; ++step) {
      const Update u = adversary.next(base.graph(), base.matching());
      if (u.insert) {
        base.insert_edge(u.edge.u, u.edge.v);
      } else {
        base.delete_edge(u.edge.u, u.edge.v);
      }
      if (step % 100 == 0) {
        const VertexId opt_size =
            reference_mcm_size(base.graph().snapshot());
        if (opt_size > 0) {
          ratio.add(static_cast<double>(opt_size) /
                    std::max<VertexId>(1, base.matching().size()));
        }
      }
    }
    table.row()
        .cell("BM-style maximal")
        .cell(ratio.mean(), 4)
        .cell(ratio.max(), 4)
        .cell(base.max_update_work())
        .cell("-");
  }
  table.print();
  std::printf("# shape check: the adaptive deleter cannot push the window "
              "matcher past ~1+eps for long — every window draws fresh "
              "coins, the paper's adaptive-adversary argument. (This "
              "particular adversary does not break the oblivious scheme "
              "either; the distinction the paper proves is about the "
              "guarantee — mark-reconstruction attacks exist in principle "
              "but are nontrivial to mount.)\n");
}

void table_work_separation() {
  // The paper's headline dynamic claim: update work O((beta/eps^3)
  // log(1/eps)) — independent of n and degree — versus the baseline's
  // degree-driven rescans (BM'19: O(sqrt(beta*n))). On K_n with a
  // matched-edge-deleting adversary, the baseline's worst-case update
  // grows ~n while the window matcher's work profile is flat.
  Table table("E9.c  update-work separation on K_n (adaptive deleter)",
              {"n", "window mean work/upd", "window p99-ish max",
               "baseline mean", "baseline max"});
  for (VertexId n : {400u, 800u, 1600u}) {
    const Graph host = gen::complete_graph(n);

    WindowMatcherOptions opt;
    opt.beta = 1;
    opt.eps = 0.4;
    opt.delta_scale = 1.0;
    WindowMatcher wm(n, opt);
    wm.bulk_load(host.edge_list());  // telemetry starts at zero after this
    const std::uint64_t warm_total = wm.total_work();
    MatchedEdgeDeleter adv_w(21);
    const int kSteps = 1200;
    for (int step = 0; step < kSteps; ++step) {
      const Update u = adv_w.next(wm.graph(), wm.matching());
      if (u.insert) {
        wm.insert_edge(u.edge.u, u.edge.v);
      } else {
        wm.delete_edge(u.edge.u, u.edge.v);
      }
    }
    const double wmean =
        static_cast<double>(wm.total_work() - warm_total) / kSteps;

    BaselineDynamicMaximal base(n);
    for (const Edge& e : host.edge_list()) base.insert_edge(e.u, e.v);
    const std::uint64_t base_warm = base.total_work();
    std::uint64_t base_max = 0;
    MatchedEdgeDeleter adv_b(21);
    for (int step = 0; step < kSteps; ++step) {
      const Update u = adv_b.next(base.graph(), base.matching());
      if (u.insert) {
        base.insert_edge(u.edge.u, u.edge.v);
      } else {
        base.delete_edge(u.edge.u, u.edge.v);
      }
      base_max = std::max(base_max, base.last_update_work());
    }
    const double bmean =
        static_cast<double>(base.total_work() - base_warm) / kSteps;

    table.row()
        .cell(n)
        .cell(wmean, 1)
        .cell(wm.max_update_work())
        .cell(bmean, 1)
        .cell(base_max);
  }
  table.print();
  std::printf("# shape check: baseline max work grows ~linearly with n "
              "(degree-driven rescans, the BM'19 sqrt(beta*n) regime); the "
              "window matcher's mean work is governed by (beta, eps) — its "
              "max includes the once-per-window structure build, bounded "
              "by the sparsifier size O(|M|*delta), not by degree.\n");
}

void table_stability() {
  Table table("E10  Lemma 3.4 stability envelope (eps=0.25 start)",
              {"eps'", "deletions", "measured ratio", "envelope 1+2e+2e'",
               "ok"});
  const VertexId n = 1500;
  Rng rng(7);
  const Graph host = gen::clique_union(n, 16, 4, rng);
  const double eps = 0.25;

  for (double eps_prime : {0.1, 0.25, 0.5}) {
    // Fresh (1+eps)-matching on the host.
    const Matching start = approx_mcm(host, eps);
    DynGraph g(n);
    for (const Edge& e : host.edge_list()) g.insert_edge(e.u, e.v);
    Matching m = start;
    // Adversarially delete eps'*|M| matched edges (the worst choice: each
    // deletion is guaranteed to shrink M by one).
    const auto deletions =
        static_cast<std::size_t>(eps_prime * static_cast<double>(start.size()));
    Rng adv(9);
    for (std::size_t d = 0; d < deletions; ++d) {
      // pick a random matched edge
      const EdgeList edges = m.edges();
      const Edge target = edges[adv.below(edges.size())];
      g.erase_edge(target.u, target.v);
      m.unmatch(target.u);
    }
    const double opt = reference_mcm_size(g.snapshot());
    const double ratio = opt / static_cast<double>(m.size());
    const double envelope = 1.0 + 2.0 * eps + 2.0 * eps_prime;
    table.row()
        .cell(eps_prime, 2)
        .cell(static_cast<std::uint64_t>(deletions))
        .cell(ratio, 4)
        .cell(envelope, 4)
        .cell(ratio <= envelope ? "yes" : "NO");
  }
  table.print();
}

}  // namespace

int main() {
  banner("E9/E10 fully dynamic matching (Theorem 3.5, Lemma 3.4)",
         "worst-case O((beta/eps^3)log(1/eps)) update work; (1+eps) vs an "
         "adaptive adversary; Gupta-Peng stability");
  table_oblivious();
  table_adaptive();
  table_work_separation();
  table_stability();
  return 0;
}
