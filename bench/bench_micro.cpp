// E12 — micro-benchmarks (google-benchmark) for the Section 3.1
// machinery: the O(1)-init sparse-array position sampler versus the two
// alternatives the paper discusses and rejects (copying the adjacency
// array; rejection sampling), plus matcher kernel costs.
#include <benchmark/benchmark.h>

#include "gen/generators.hpp"
#include "matching/blossom.hpp"
#include "matching/bounded_aug.hpp"
#include "matching/greedy.hpp"
#include "sparsify/sparsifier.hpp"
#include "util/sparse_array.hpp"

namespace matchsparse {
namespace {

// --- sampling strategies over a read-only adjacency array ---------------

/// The paper's pos_v sampler (Section 3.1): O(Δ) per vertex, O(1) reset.
void BM_SampleSparseArray(benchmark::State& state) {
  const auto deg = static_cast<std::size_t>(state.range(0));
  const std::size_t delta = 32;
  SparseArray<std::size_t> pos(deg);
  Rng rng(1);
  for (auto _ : state) {
    pos.reset();
    for (std::size_t t = 0; t < delta; ++t) {
      const std::size_t limit = deg - t;
      const auto i = static_cast<std::size_t>(rng.below(limit));
      const std::size_t j = limit - 1;
      const std::size_t vi = pos.contains(i) ? pos.get(i) : i;
      const std::size_t vj = pos.contains(j) ? pos.get(j) : j;
      pos.set(i, vj);
      pos.set(j, vi);
      benchmark::DoNotOptimize(vi);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delta));
}
BENCHMARK(BM_SampleSparseArray)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

/// The rejected alternative: copy the adjacency array, Fisher–Yates on the
/// copy — O(deg) per vertex, which is what breaks sublinearity.
void BM_SampleCopyArray(benchmark::State& state) {
  const auto deg = static_cast<std::size_t>(state.range(0));
  const std::size_t delta = 32;
  std::vector<std::uint32_t> adjacency(deg);
  for (std::size_t i = 0; i < deg; ++i) adjacency[i] = static_cast<std::uint32_t>(i);
  Rng rng(2);
  for (auto _ : state) {
    std::vector<std::uint32_t> copy = adjacency;  // the O(deg) cost
    for (std::size_t t = 0; t < delta; ++t) {
      const std::size_t limit = deg - t;
      const auto i = static_cast<std::size_t>(rng.below(limit));
      std::swap(copy[i], copy[limit - 1]);
      benchmark::DoNotOptimize(copy[limit - 1]);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delta));
}
BENCHMARK(BM_SampleCopyArray)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

/// Rejection sampling with a hash set: expected O(Δ) but with hashing
/// constants and distribution-dependent retries.
void BM_SampleRejection(benchmark::State& state) {
  const auto deg = static_cast<std::size_t>(state.range(0));
  const std::size_t delta = 32;
  Rng rng(3);
  for (auto _ : state) {
    std::vector<std::size_t> chosen;
    chosen.reserve(delta);
    while (chosen.size() < delta) {
      const auto i = static_cast<std::size_t>(rng.below(deg));
      if (std::find(chosen.begin(), chosen.end(), i) == chosen.end()) {
        chosen.push_back(i);
      }
    }
    benchmark::DoNotOptimize(chosen.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delta));
}
BENCHMARK(BM_SampleRejection)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// --- end-to-end kernels --------------------------------------------------

void BM_SparsifyCompleteGraph(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = gen::complete_graph(n);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparsify_edges(g, 16, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SparsifyCompleteGraph)->Arg(256)->Arg(1024)->Arg(4096);

/// Thread-scaling of the deterministic parallel builder (per-vertex RNG
/// substreams; output independent of thread count). NOTE: speedup only
/// shows on multi-core hosts — on a single-core machine (like the CI
/// container this repo was developed in) the series is flat and the
/// benchmark documents thread-invariance overhead instead.
void BM_SparsifyParallelThreads(benchmark::State& state) {
  // Work must dwarf the transient pool's spawn cost: ~6M marks.
  static const Graph g = [] {
    Rng rng(1);
    return gen::clique_union(100000, 120, 4, rng);
  }();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparsify_edges_parallel(g, 16, 7, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g.num_vertices());
}
BENCHMARK(BM_SparsifyParallelThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GreedyMaximal(benchmark::State& state) {
  Rng rng(5);
  const Graph g =
      gen::erdos_renyi(static_cast<VertexId>(state.range(0)), 16.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_maximal_matching(g));
  }
}
BENCHMARK(BM_GreedyMaximal)->Arg(1 << 12)->Arg(1 << 15);

void BM_ApproxMcm(benchmark::State& state) {
  Rng rng(6);
  const Graph g =
      gen::erdos_renyi(static_cast<VertexId>(state.range(0)), 12.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_mcm(g, 0.25));
  }
}
BENCHMARK(BM_ApproxMcm)->Arg(1 << 11)->Arg(1 << 13);

void BM_BlossomExact(benchmark::State& state) {
  Rng rng(7);
  const Graph g =
      gen::erdos_renyi(static_cast<VertexId>(state.range(0)), 8.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blossom_mcm(g));
  }
}
BENCHMARK(BM_BlossomExact)->Arg(1 << 9)->Arg(1 << 11);

}  // namespace
}  // namespace matchsparse

BENCHMARK_MAIN();
