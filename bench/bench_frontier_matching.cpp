// Serial Hopcroft–Karp vs the frontier kernels (DESIGN.md §13).
//
// Two sweeps:
//   1. Bipartite workloads (K_{s,s} block chains, a random bipartite
//      graph, and bipartite double covers of the β-bounded families):
//      exact serial HK vs frontier at lanes ∈ {1, 2, 4, 8}. Sizes must
//      be bit-identical everywhere (the determinism contract).
//   2. β-bounded family graphs (often non-bipartite): the kFrontier
//      backend entry point frontier_mcm vs the serial bounded-aug
//      driver at threads = 1 — pins that the backend dispatch adds no
//      overhead on the fallback path.
//
// Acceptance gate printed at the end: on multi-core hosts, frontier at
// 4 lanes must beat serial HK by >= 1.3x on the clique-path chain; on a
// single-core host (this container: nproc = 1) the gate degrades to
// bit-identical sizes plus <= 10% serial-policy regression.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gen/generators.hpp"
#include "matching/frontier.hpp"
#include "matching/hopcroft_karp.hpp"
#include "util/rng.hpp"

namespace matchsparse {
namespace {

// Chain of K_{s,s} blocks bridged end to end — the bipartite analogue of
// gen::clique_path and the augmenting-path-rich HK worst case.
Graph bipartite_block_path(VertexId blocks, VertexId s) {
  EdgeList edges;
  for (VertexId b = 0; b < blocks; ++b) {
    const VertexId base = b * 2 * s;
    for (VertexId u = 0; u < s; ++u) {
      for (VertexId v = 0; v < s; ++v) {
        edges.emplace_back(base + u, base + s + v);
      }
    }
    if (b + 1 < blocks) {
      edges.emplace_back(base + 2 * s - 1, base + 2 * s);
    }
  }
  return Graph::from_edges(blocks * 2 * s, edges);
}

Graph random_bipartite(VertexId side, double p, Rng& rng) {
  EdgeList edges;
  for (VertexId u = 0; u < side; ++u) {
    for (VertexId v = 0; v < side; ++v) {
      if (rng.chance(p)) edges.emplace_back(u, side + v);
    }
  }
  return Graph::from_edges(2 * side, edges);
}

Graph double_cover(const Graph& g) {
  const VertexId n = g.num_vertices();
  EdgeList edges;
  for (const Edge& e : g.edge_list()) {
    edges.emplace_back(e.u, e.v + n);
    edges.emplace_back(e.v, e.u + n);
  }
  return Graph::from_edges(2 * n, edges);
}

// The host shares one core with the rest of the container, so isolated
// timings jitter by 2x run to run. Two defenses: the minimum of several
// warm runs (noise is strictly additive), and for the A-vs-B gate an
// interleaved schedule so a slow patch of machine hits both sides alike.
template <typename Fn>
double timed_min(const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 7; ++rep) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

template <typename FnA, typename FnB>
std::pair<double, double> timed_min_pair(const FnA& a, const FnB& b) {
  double best_a = std::numeric_limits<double>::infinity();
  double best_b = best_a;
  for (int rep = 0; rep < 9; ++rep) {
    {
      WallTimer timer;
      a();
      best_a = std::min(best_a, timer.seconds());
    }
    {
      WallTimer timer;
      b();
      best_b = std::min(best_b, timer.seconds());
    }
  }
  return {best_a, best_b};
}

struct Instance {
  std::string family;
  Graph g;
};

}  // namespace

int bench_main() {
  bench::banner("frontier_matching",
                "flat frontier kernels match serial HK sizes bit-identically "
                "at every lane count and win wall-clock on wide phases");
  bench::JsonlSink sink("frontier_matching");
  sink.set_seed(1);

  Rng rng(1);
  std::vector<Instance> instances;
  instances.push_back({"block_path_16000x4", bipartite_block_path(16000, 4)});
  instances.push_back({"block_path_4000x16", bipartite_block_path(4000, 16)});
  instances.push_back({"random_bipartite_64k",
                       random_bipartite(32000, 16.0 / 32000.0, rng)});
  instances.push_back(
      {"cliquepath_cover", double_cover(gen::clique_path(8000, 8))});

  bool all_identical = true;
  double serial_hk_cliquepath = 0.0;
  double frontier4_cliquepath = 0.0;
  double frontier1_cliquepath = 0.0;

  for (const Instance& inst : instances) {
    const Graph& g = inst.g;
    VertexId hk_size = 0;
    double hk_sec = 0.0;

    for (const std::size_t lanes :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      ThreadPool pool(lanes);
      FrontierOptions opt;
      opt.lanes = lanes;
      if (lanes > 1) opt.pool = &pool;
      VertexId size = 0;
      FrontierStats stats;
      // Each lane count re-times serial HK interleaved with the frontier
      // run, so every reported speedup is a same-conditions pair.
      const auto [hk_pair_sec, sec] = timed_min_pair(
          [&] { hk_size = hopcroft_karp(g).size(); },
          [&] { size = frontier_hopcroft_karp(g, opt, &stats).size(); });
      if (lanes == 1) {
        hk_sec = hk_pair_sec;
        bench::JsonRow hk_row;
        hk_row.str("family", inst.family)
            .num("n", static_cast<std::uint64_t>(g.num_vertices()))
            .num("m", static_cast<std::uint64_t>(g.num_edges()))
            .str("matcher", "serial_hk")
            .num("threads", std::uint64_t{1})
            .num("seconds", hk_sec)
            .num("size", static_cast<std::uint64_t>(hk_size))
            .num("speedup_vs_hk", 1.0);
        sink.row(hk_row);
      }
      const bool identical = size == hk_size;
      all_identical = all_identical && identical;
      bench::JsonRow row;
      row.str("family", inst.family)
          .num("n", static_cast<std::uint64_t>(g.num_vertices()))
          .num("m", static_cast<std::uint64_t>(g.num_edges()))
          .str("matcher", "frontier")
          .num("threads", static_cast<std::uint64_t>(lanes))
          .num("seconds", sec)
          .num("size", static_cast<std::uint64_t>(size))
          .num("speedup_vs_hk", hk_pair_sec / sec)
          .num("phases", static_cast<std::uint64_t>(stats.phases))
          .num("max_width", static_cast<std::uint64_t>(stats.max_width))
          .num("serial_rescues",
               static_cast<std::uint64_t>(stats.serial_rescues))
          .boolean("size_identical", identical);
      sink.row(row);
      if (inst.family == "cliquepath_cover") {
        // Gate ratios use each lane count's own interleaved HK pairing.
        if (lanes == 1) {
          serial_hk_cliquepath = hk_pair_sec;
          frontier1_cliquepath = sec;
        }
        if (lanes == 4) {
          frontier4_cliquepath = sec * (serial_hk_cliquepath / hk_pair_sec);
        }
      }
    }
  }

  // Fallback path: the kFrontier backend on non-bipartite β-bounded
  // families routes through the serial bounded-aug driver.
  for (const char* name : {"line", "unitdisk", "cliqueunion", "cliquepath"}) {
    const Graph g = gen::find_family(name).make(8000, 5);
    VertexId base_size = 0;
    const double base_sec = timed_min(
        [&] { base_size = approx_mcm(g, 0.25).size(); });
    VertexId size = 0;
    const double sec = timed_min(
        [&] { size = frontier_mcm(g, 0.25).size(); });
    all_identical = all_identical && size == base_size;
    bench::JsonRow row;
    row.str("family", std::string("family_") + name)
        .num("n", static_cast<std::uint64_t>(g.num_vertices()))
        .num("m", static_cast<std::uint64_t>(g.num_edges()))
        .str("matcher", "frontier_mcm_fallback")
        .num("threads", std::uint64_t{1})
        .num("seconds", sec)
        .num("size", static_cast<std::uint64_t>(size))
        .num("speedup_vs_hk", base_sec / sec)
        .boolean("size_identical", size == base_size);
    sink.row(row);
  }

  const std::size_t cores = default_pool().size();
  std::printf("\n# acceptance: host pool threads = %zu\n", cores);
  if (cores >= 4) {
    const double speedup = serial_hk_cliquepath / frontier4_cliquepath;
    std::printf("# multi-core gate: frontier@4 vs serial HK on cliquepath "
                "cover = %.2fx (need >= 1.3x) -> %s\n",
                speedup, speedup >= 1.3 ? "PASS" : "FAIL");
  } else {
    const double regression = frontier1_cliquepath / serial_hk_cliquepath;
    std::printf("# single-core gate: sizes bit-identical = %s, frontier@1 / "
                "serial HK on cliquepath cover = %.2fx (need <= 1.10) -> %s\n",
                all_identical ? "yes" : "NO",
                regression,
                (all_identical && regression <= 1.10) ? "PASS" : "FAIL");
  }
  std::printf("# sizes bit-identical across all matchers/lane counts: %s\n",
              all_identical ? "yes" : "NO");
  return all_identical ? 0 : 1;
}

}  // namespace matchsparse

int main() { return matchsparse::bench_main(); }
