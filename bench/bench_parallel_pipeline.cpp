// E16 — the parallel end-to-end sparsify→CSR pipeline: serial path
// (sharded marking at one lane + globally sorted edge list + serial CSR
// build) versus the fused parallel pipeline (sparsify_parallel: sharded
// marking feeding per-shard histograms / scatter / per-list dedup, no
// global sort) at 1/2/4/8 threads.
//
// Families cover the three regimes of the marking rule:
//   complete     — deg ≫ 2Δ everywhere: pure sampling, pipeline cost
//                  independent of m (the Theorem 3.1 sublinearity);
//   cliqueunion  — random β-bounded with deg > 2Δ: sampling at scale,
//                  the ≥10⁷-edge headline instance;
//   unitdisk     — deg < 2Δ: whole neighborhoods, every edge marked from
//                  both endpoints — the dedup-heaviest path.
//
// Every row asserts the acceptance invariant: the fused pipeline's Graph
// is edge-set-identical to the serial path's for the same seed at every
// thread count. Rows are mirrored to BENCH_parallel_pipeline.json.
//
// NOTE: thread-scaling (the ≥3x target at 8 threads) only shows on
// multi-core hosts; on a single-core container the series is flat and
// the benchmark instead documents thread-invariance plus the fused
// pipeline's algorithmic win over the global sort.
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "gen/generators.hpp"
#include "sparsify/sparsifier.hpp"
#include "util/thread_pool.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;

namespace {

constexpr std::uint64_t kSeed = 0xbadc0ffee;

struct PipelineCase {
  std::string family;
  VertexId delta;
  Graph g;
};

std::vector<PipelineCase> make_cases(bool small) {
  std::vector<PipelineCase> cases;
  Rng rng(5);
  if (small) {
    cases.push_back({"complete", 32, gen::complete_graph(400)});
    cases.push_back({"cliqueunion", 32, gen::clique_union(20000, 40, 2, rng)});
    cases.push_back(
        {"unitdisk", 32,
         gen::unit_disk(20000, gen::unit_disk_radius_for_degree(20000, 35.0),
                        rng)});
    return cases;
  }
  // K_4800: m ~ 1.15e7 with only 4800 vertices — the dense extreme where
  // the pipeline reads a vanishing fraction of the input.
  cases.push_back({"complete", 32, gen::complete_graph(4800)});
  // deg ~ 78 > 2Δ: real sampling on 10⁷+ edges (the acceptance instance).
  cases.push_back(
      {"cliqueunion", 32, gen::clique_union(1000000, 40, 2, rng)});
  // deg ~ 35 < 2Δ: whole-neighborhood marking, maximal duplication.
  cases.push_back(
      {"unitdisk", 32,
       gen::unit_disk(600000, gen::unit_disk_radius_for_degree(600000, 35.0),
                      rng)});
  return cases;
}

}  // namespace

int main() {
  banner("E16 parallel sparsify->CSR pipeline",
         "the sparsifier is a local per-vertex primitive (Thm 2.1/3.1), so "
         "sparsify+CSR parallelises end-to-end with output identical to the "
         "serial path at every thread count");
  const bool small = std::getenv("MATCHSPARSE_BENCH_SMALL") != nullptr;
  JsonlSink sink("parallel_pipeline");
  sink.set_seed(kSeed);
  Table table("E16  serial vs fused parallel pipeline",
              {"family", "n", "m", "delta", "path", "threads", "mark_ms",
               "csr_ms", "total_ms", "speedup", "identical"});

  for (const PipelineCase& c : make_cases(small)) {
    const VertexId n = c.g.num_vertices();

    // Serial reference: one marking lane, global sort+unique, serial CSR.
    WallTimer serial_timer;
    SparsifierStats serial_stats;
    const EdgeList marks =
        sparsify_edges_parallel(c.g, c.delta, kSeed, 1, &serial_stats);
    const double serial_mark_ms = serial_timer.millis();
    const Graph reference = Graph::from_edges(n, marks);
    const double serial_total_ms = serial_timer.millis();
    const EdgeList reference_edges = reference.edge_list();

    auto emit = [&](const char* path, std::uint64_t threads, double mark_ms,
                    double csr_ms, double total_ms, bool identical,
                    std::uint64_t probes) {
      table.row()
          .cell(c.family)
          .cell(n)
          .cell(c.g.num_edges())
          .cell(c.delta)
          .cell(path)
          .cell(threads)
          .cell(mark_ms, 1)
          .cell(csr_ms, 1)
          .cell(total_ms, 1)
          .cell(serial_total_ms / total_ms, 2)
          .cell(identical ? "yes" : "NO");
      JsonRow row;
      row.str("bench", "parallel_pipeline")
          .str("family", c.family)
          .num("n", static_cast<std::uint64_t>(n))
          .num("m", c.g.num_edges())
          .num("delta", static_cast<std::uint64_t>(c.delta))
          .str("path", path)
          .num("threads", threads)
          .num("mark_ms", mark_ms)
          .num("csr_ms", csr_ms)
          .num("total_ms", total_ms)
          .num("speedup_vs_serial", serial_total_ms / total_ms)
          .num("sparsifier_edges",
               static_cast<std::uint64_t>(reference.num_edges()))
          .num("probes", probes)
          .boolean("identical", identical);
      sink.row(row);
    };

    emit("serial", 1, serial_mark_ms, serial_total_ms - serial_mark_ms,
         serial_total_ms, true, serial_stats.probes);

    for (std::uint64_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      WallTimer timer;
      SparsifierStats stats;
      const Graph fused = sparsify_parallel(c.g, c.delta, kSeed, pool,
                                            &stats, threads);
      const double total_ms = timer.millis();
      const bool identical =
          fused.num_edges() == reference.num_edges() &&
          fused.edge_list() == reference_edges;
      const double mark_ms = stats.mark_seconds * 1e3;
      emit("fused", threads, mark_ms, total_ms - mark_ms, total_ms,
           identical, stats.probes);
      if (!identical) {
        std::printf("# ERROR: fused pipeline diverged from the serial path "
                    "(family=%s threads=%llu)\n",
                    c.family.c_str(),
                    static_cast<unsigned long long>(threads));
        return 1;
      }
    }
  }

  table.print();
  std::printf(
      "# shape check: 'identical' is yes on every row (the per-vertex "
      "mix64 substreams make marking order-independent, and per-list "
      "dedup reproduces the globally normalized edge set). On multi-core "
      "hosts the fused path's speedup column should exceed 3x at 8 "
      "threads on the >=1e7-edge families; at 1 thread it already beats "
      "the serial path by skipping the global O(N log N) mark sort.\n");
  return 0;
}
