// E4 — Theorem 3.1: sequential (1+ε)-approximate matching in
// O(n·(β/ε²)·log(1/ε)) time — sublinear in m on dense inputs.
//
// Table 1: scaling on dense clique-union graphs — wall time and adjacency
//          probes of the sparsify+match pipeline vs the full-graph
//          (1+ε) matcher, greedy maximal (O(m)) and the Assadi–Solomon
//          O(nβ log n) maximal-matching baseline. The pipeline's probe
//          count must grow like n·Δ while m grows like n·deg, so
//          probes/2m must FALL as density rises.
// Table 2: the refined O(|MCM|·Δ)-probe bound on low-MCM instances.
#include "bench_common.hpp"

#include "core/api.hpp"
#include "matching/assadi_solomon.hpp"
#include "matching/greedy.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;

namespace {

void table_scaling() {
  Table table("E4.a  dense clique-union sweep (beta<=4, eps=0.25)",
              {"n", "m", "algo", "matching", "ratio", "ms", "probes",
               "probes/2m"});
  const double eps = 0.25;
  for (VertexId n : {2000u, 4000u, 8000u, 16000u}) {
    Rng grng(n);
    // Density grows with n: clique size ~ n/16 keeps m = Theta(n^2/64).
    const Graph g = gen::clique_union(n, std::max<VertexId>(8, n / 16), 4,
                                      grng);
    const double two_m = 2.0 * static_cast<double>(g.num_edges());
    const double ref = reference_mcm_size(g);
    auto add_row = [&](const char* name, VertexId size, double ms,
                       std::uint64_t probes) {
      table.row()
          .cell(n)
          .cell(g.num_edges())
          .cell(name)
          .cell(size)
          .cell(ref / static_cast<double>(std::max<VertexId>(1, size)), 4)
          .cell(ms, 1)
          .cell(probes)
          .cell(static_cast<double>(probes) / two_m, 4);
    };

    {
      ApproxMatchingConfig cfg;
      cfg.beta = 4;
      cfg.eps = eps;
      WallTimer t;
      const auto r = approx_maximum_matching(g, cfg);
      add_row("sparsify+match", r.matching.size(), t.millis(), r.probes);
    }
    {
      WallTimer t;
      const Matching m = approx_mcm(g, eps);
      add_row("full-graph (1+eps)", m.size(), t.millis(),
              static_cast<std::uint64_t>(two_m));
    }
    {
      WallTimer t;
      const Matching m = greedy_maximal_matching(g);
      add_row("greedy maximal", m.size(), t.millis(),
              static_cast<std::uint64_t>(two_m));
    }
    {
      Rng rng(3);
      AssadiSolomonOptions opt;
      opt.beta = 4;
      WallTimer t;
      const auto r = assadi_solomon_maximal(g, rng, opt);
      add_row("AS'19 maximal", r.matching.size(), t.millis(), r.probes);
    }
  }
  table.print();
  std::printf(
      "# shape check: 'sparsify+match' probes/2m falls steadily with n — "
      "the Theorem 3.1 sublinearity in the adjacency-array query model. "
      "Honest caveats: (1) wall-clock time is dominated by the O(n*delta "
      "log) mark-sort and CSR build, so at these sizes the full-graph "
      "matcher is faster in seconds even while reading 25x more of the "
      "input — the query model is where the theorem's win is defined, and "
      "probe counts are the model-accurate cost; (2) these dense random "
      "instances are easy for every maximal matcher (ratio ~1 for greedy "
      "and AS'19 too) — the sparsifier's *guarantee* under adversarial "
      "structure is established by E1/E5 instead; (3) AS'19 probes are "
      "tiny here because random probing matches dense graphs almost "
      "immediately; its O(n*beta*log n) shape shows on sparse "
      "neighborhoods, and it only ever guarantees 2-approx.\n");
}

void table_refined() {
  Table table("E4.b  refined |MCM|-sensitive probe bound (K_k + isolated)",
              {"n", "|MCM|", "m", "probes", "probes/(|MCM|*delta)"});
  const double eps = 0.25;
  for (VertexId k : {100u, 200u, 400u}) {
    const Graph g =
        Graph::from_edges(5000, gen::complete_graph(k).edge_list());
    ApproxMatchingConfig cfg;
    cfg.beta = 1;
    cfg.eps = eps;
    const auto r = approx_maximum_matching(g, cfg);
    // Probes on isolated vertices are 1 each (the degree read); subtract
    // them to isolate the matching-driven work.
    const std::uint64_t isolated = 5000 - k;
    const double norm =
        static_cast<double>(r.probes - isolated) /
        (static_cast<double>(r.matching.size()) * r.delta);
    table.row()
        .cell(5000u)
        .cell(r.matching.size())
        .cell(g.num_edges())
        .cell(r.probes)
        .cell(norm, 3);
  }
  table.print();
  std::printf("# shape check: the normalised column stays O(1) as |MCM| "
              "grows — probes track |MCM|*delta, not n*delta.\n");
}

}  // namespace

int main() {
  banner("E4 sequential sublinear time (Theorem 3.1)",
         "(1+eps)-MCM in O(n*(beta/eps^2)*log(1/eps)) — reads o(m) of "
         "dense inputs; refined bound O(|MCM|*delta)");
  table_scaling();
  table_refined();
  return 0;
}
