// E13 — semi-streaming G_Δ (Section 3's memory-constrained-models remark):
//       one pass, O(n·Δ) words, (1+ε) quality vs the one-pass greedy
//       2-approx baseline and the Θ(m)-memory buffer-everything ceiling —
//       including on adversarially ordered streams, where greedy's
//       arrival-order sensitivity shows and reservoir sampling does not
//       care.
// E14 — MPC realisation via mergeable bottom-Δ sketches: rounds
//       O(log_k machines), per-machine memory O(m/machines + n·Δ).
#include "bench_common.hpp"

#include "stream/mpc.hpp"
#include "stream/stream_sparsifier.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;
using namespace matchsparse::stream;

namespace {

void table_streaming() {
  Table table("E13  one-pass matching on K_1000 (m = 499500)",
              {"algorithm", "stream order", "matching", "ratio",
               "peak words", "words/m"});
  const VertexId n = 1000;
  const Graph g = gen::complete_graph(n);
  const double opt = static_cast<double>(n) / 2.0;
  const VertexId delta = 12;

  for (auto [order, name] :
       {std::pair{EdgeStream::Order::kShuffled, "shuffled"},
        std::pair{EdgeStream::Order::kSortedByEndpoint, "sorted (adv.)"}}) {
    EdgeStream stream(g.edge_list(), order, 3);
    {
      MemoryMeter meter;
      const Matching m = StreamingSparsifier::one_pass_matching(
          n, stream, delta, 0.2, 11, &meter);
      table.row()
          .cell("reservoir G_delta + (1+eps)")
          .cell(name)
          .cell(m.size())
          .cell(opt / std::max<VertexId>(1, m.size()), 4)
          .cell(meter.peak())
          .cell(static_cast<double>(meter.peak()) /
                    static_cast<double>(g.num_edges()),
                4);
    }
    {
      MemoryMeter meter;
      const Matching m = streaming_greedy_matching(n, stream, &meter);
      table.row()
          .cell("one-pass greedy maximal")
          .cell(name)
          .cell(m.size())
          .cell(opt / std::max<VertexId>(1, m.size()), 4)
          .cell(meter.peak())
          .cell(static_cast<double>(meter.peak()) /
                    static_cast<double>(g.num_edges()),
                4);
    }
  }
  // The Θ(m) ceiling.
  table.row()
      .cell("buffer everything + exact")
      .cell("-")
      .cell(static_cast<VertexId>(opt))
      .cell(1.0, 4)
      .cell(2 * g.num_edges())
      .cell(2.0, 4);
  table.print();
  std::printf("# shape check: the reservoir pipeline holds ~n*delta words "
              "(<3%% of m) and matches the exact size; order of arrival is "
              "irrelevant to it by Algorithm R's uniformity.\n");
}

void table_adversarial_order() {
  // The classic hard stream for one-pass greedy: disjoint 3-edge paths
  // u-v-w-x whose MIDDLE edges arrive first. Greedy commits to every
  // middle edge and ends at exactly half the optimum; the reservoir
  // pipeline keeps all edges of these degree-<=2 vertices and recovers
  // the optimum regardless of order.
  Table table("E13.b  adversarial arrival order (500 disjoint P4s)",
              {"algorithm", "matching", "optimum", "ratio"});
  const VertexId paths = 500;
  const VertexId n = 4 * paths;
  EdgeList middle, sides;
  for (VertexId p = 0; p < paths; ++p) {
    const VertexId base = 4 * p;
    middle.emplace_back(base + 1, base + 2);
    sides.emplace_back(base, base + 1);
    sides.emplace_back(base + 2, base + 3);
  }
  EdgeList ordered = middle;
  ordered.insert(ordered.end(), sides.begin(), sides.end());
  EdgeStream stream(ordered, EdgeStream::Order::kGiven, 0);
  const double opt = 2.0 * paths;

  const Matching greedy = streaming_greedy_matching(n, stream);
  table.row()
      .cell("one-pass greedy maximal")
      .cell(greedy.size())
      .cell(static_cast<std::uint64_t>(opt))
      .cell(opt / greedy.size(), 4);
  const Matching sparse =
      StreamingSparsifier::one_pass_matching(n, stream, 8, 0.1, 5);
  table.row()
      .cell("reservoir G_delta + (1+eps)")
      .cell(sparse.size())
      .cell(static_cast<std::uint64_t>(opt))
      .cell(opt / sparse.size(), 4);
  table.print();
  std::printf("# shape check: greedy hits its tight factor 2 exactly; the "
              "sparsifier pipeline is arrival-order independent and "
              "recovers the optimum.\n");
}

void table_mpc() {
  Table mpc_table("E14  MPC bottom-delta sketches on K_1200 (delta=10)",
                  {"machines", "fan-in", "rounds", "max machine words",
                   "words/m", "matching", "ratio"});
  const VertexId n = 1200;
  const Graph g = gen::complete_graph(n);
  const EdgeList edges = g.edge_list();
  const double opt_size = static_cast<double>(n) / 2.0;
  for (std::size_t machines : {1u, 4u, 16u, 64u}) {
    MpcOptions opt;
    opt.machines = machines;
    opt.fan_in = 4;
    opt.delta = 10;
    opt.eps = 0.2;
    const MpcResult r = mpc_approx_matching(n, edges, opt, 13);
    mpc_table.row()
        .cell(static_cast<std::uint64_t>(machines))
        .cell(static_cast<std::uint64_t>(opt.fan_in))
        .cell(r.stats.rounds)
        .cell(r.stats.max_machine_words)
        .cell(static_cast<double>(r.stats.max_machine_words) /
                  (2.0 * static_cast<double>(g.num_edges())),
              4)
        .cell(r.matching.size())
        .cell(opt_size / std::max<VertexId>(1, r.matching.size()), 4);
  }
  mpc_table.print();
  std::printf("# shape check: per-machine memory falls with the machine "
              "count toward the O(n*delta) sketch floor; rounds grow only "
              "logarithmically; the output is machine-count-invariant "
              "(same seed => same sparsifier).\n");
}

}  // namespace

int main() {
  banner("E13/E14 memory-constrained models (Section 3 remark)",
         "G_delta is a one-pass reservoir in streaming and a mergeable "
         "bottom-delta sketch in MPC; Theorem 2.1 applies unchanged");
  table_streaming();
  table_adversarial_order();
  table_mpc();
  return 0;
}
