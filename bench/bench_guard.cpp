// Run-guard overhead (google-benchmark + a hand-rolled concurrent
// section). The acceptance bar for the guard subsystem is that the
// DORMANT path — no guard installed, the state every library user
// outside the CLI/service wrapper runs in — costs under 2% on the
// bench_micro medians. The google-benchmark half measures the
// primitives directly (poll dormant vs armed, MemCharge, ScopedGuard
// install) and the end-to-end pipeline with and without an (untripped)
// guard installed; the custom main() below additionally measures
// 1/2/4/8 SIMULTANEOUS RunContexts polling on their own threads
// (DESIGN.md §14) — per-thread-slot resolution means armed contexts
// must not contend — and emits BENCH_run_context.json. It also asserts
// the dormant poll stays a thread-local load + branch: a wildly slower
// dormant poll means someone re-introduced a shared slot or a lock, and
// the bench exits nonzero.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "gen/generators.hpp"
#include "guard/context.hpp"
#include "guard/guard.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace matchsparse {
namespace {

/// The dormant fast path: one acquire load + branch. This is what every
/// strided cancellation point in sparsify/CSR/matching costs when no
/// guard is installed.
void BM_PollDormant(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard::poll());
  }
}
BENCHMARK(BM_PollDormant);

/// An installed but untripped guard with a far deadline: adds the poll
/// counter and a clock read.
void BM_PollArmed(benchmark::State& state) {
  guard::RunGuard::Limits limits;
  limits.deadline_ms = 1e9;
  guard::RunGuard g(limits);
  const guard::ScopedGuard installed(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard::poll());
  }
}
BENCHMARK(BM_PollArmed);

void BM_ScopedGuardInstall(benchmark::State& state) {
  guard::RunGuard g;
  for (auto _ : state) {
    const guard::ScopedGuard installed(g);
    benchmark::DoNotOptimize(guard::active());
  }
}
BENCHMARK(BM_ScopedGuardInstall);

void BM_MemChargeArmed(benchmark::State& state) {
  guard::RunGuard::Limits limits;
  limits.mem_budget_bytes = 1u << 30;
  guard::RunGuard g(limits);
  const guard::ScopedGuard installed(g);
  for (auto _ : state) {
    const guard::MemCharge charge(4096, "bench array");
    benchmark::DoNotOptimize(charge.bytes());
  }
}
BENCHMARK(BM_MemChargeArmed);

/// End-to-end sparsify+match, dormant vs armed-but-untripped. The two
/// medians should be indistinguishable at the <2% level.
Graph bench_graph() {
  Rng rng(7);
  return gen::unit_disk(20000, gen::unit_disk_radius_for_degree(20000, 12.0),
                        rng);
}

void BM_PipelineDormant(benchmark::State& state) {
  const Graph g = bench_graph();
  ApproxMatchingConfig cfg;
  cfg.beta = 5;
  cfg.eps = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_maximum_matching(g, cfg).matching.size());
  }
}
BENCHMARK(BM_PipelineDormant)->Unit(benchmark::kMillisecond);

void BM_PipelineArmedUntripped(benchmark::State& state) {
  const Graph g = bench_graph();
  ApproxMatchingConfig cfg;
  cfg.beta = 5;
  cfg.eps = 0.3;
  guard::RunGuard::Limits limits;
  limits.deadline_ms = 1e9;
  guard::RunGuard run_guard(limits);
  const guard::ScopedGuard installed(run_guard);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_maximum_matching(g, cfg).matching.size());
  }
}
BENCHMARK(BM_PipelineArmedUntripped)->Unit(benchmark::kMillisecond);

/// Times `iters` back-to-back guard::poll() calls on the calling thread
/// and returns ns/poll. The caller controls what is installed.
double time_polls(std::uint64_t iters) {
  WallTimer t;
  for (std::uint64_t i = 0; i < iters; ++i) {
    benchmark::DoNotOptimize(guard::poll());
  }
  return t.millis() * 1e6 / static_cast<double>(iters);
}

/// `contexts` threads polling simultaneously — each under its own
/// armed RunContext (far deadline), or all dormant. Returns per-thread
/// ns/poll stats. Ambient slots are per-thread, so armed cost should be
/// flat in the context count; before §14 a process-wide slot would have
/// made every armed poll a shared cache-line hit.
StreamingStats concurrent_poll_ns(int contexts, bool armed,
                                  std::uint64_t iters) {
  StreamingStats per_thread;
  std::mutex mu;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(contexts));
  for (int i = 0; i < contexts; ++i) {
    threads.emplace_back([&, i] {
      guard::RunGuard::Limits limits;
      limits.deadline_ms = 1e9;
      guard::RunContext ctx("bench-ctx-" + std::to_string(i), limits);
      ctx.set_publish_on_destroy(false);
      double ns = 0.0;
      {
        std::unique_ptr<guard::ScopedContext> scope;
        if (armed) scope = std::make_unique<guard::ScopedContext>(ctx);
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (ready.load(std::memory_order_acquire) < contexts) {
        }
        ns = time_polls(iters);
      }
      const std::lock_guard<std::mutex> lock(mu);
      per_thread.add(ns);
    });
  }
  for (std::thread& t : threads) t.join();
  return per_thread;
}

/// The §14 section: dormant vs armed poll cost at 1/2/4/8 simultaneous
/// contexts, written to BENCH_run_context.json. Returns false (after
/// reporting) if the dormant poll is far off "one thread-local load +
/// branch" territory.
bool run_context_section() {
  constexpr std::uint64_t kIters = 1 << 22;
  // A dormant poll is ~1-2 ns; this bound is an order of magnitude of
  // headroom for slow CI metal, but an accidental mutex, registry
  // lookup, or shared atomic slot blows straight through it.
  constexpr double kDormantBudgetNs = 25.0;

  bench::JsonlSink sink("run_context");
  double dormant_solo_ns = 0.0;
  for (const int contexts : {1, 2, 4, 8}) {
    for (const bool armed : {false, true}) {
      // Warm-up pass, then the measured pass.
      concurrent_poll_ns(contexts, armed, kIters / 16);
      const StreamingStats s = concurrent_poll_ns(contexts, armed, kIters);
      if (!armed && contexts == 1) dormant_solo_ns = s.mean();
      bench::JsonRow row;
      row.str("section", "concurrent_poll")
          .num("contexts", static_cast<std::uint64_t>(contexts))
          .str("mode", armed ? "armed" : "dormant")
          .num("iters_per_thread", kIters)
          .num("ns_per_poll_mean", s.mean())
          .num("ns_per_poll_min", s.min())
          .num("ns_per_poll_max", s.max());
      sink.row(row);
    }
  }

  const bool dormant_ok = dormant_solo_ns <= kDormantBudgetNs;
  bench::JsonRow verdict;
  verdict.str("section", "dormant_check")
      .num("ns_per_poll", dormant_solo_ns)
      .num("budget_ns", kDormantBudgetNs)
      .boolean("ok", dormant_ok);
  sink.row(verdict);
  if (!dormant_ok) {
    std::fprintf(stderr,
                 "bench_guard: dormant poll costs %.1f ns (> %.0f ns budget)"
                 " — no longer a thread-local load + branch?\n",
                 dormant_solo_ns, kDormantBudgetNs);
  }
  return dormant_ok;
}

}  // namespace
}  // namespace matchsparse

int main(int argc, char** argv) {
  const bool dormant_ok = matchsparse::run_context_section();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return dormant_ok ? 0 : 1;
}
