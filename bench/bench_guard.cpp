// Run-guard overhead (google-benchmark). The acceptance bar for the
// guard subsystem is that the DORMANT path — no guard installed, the
// state every library user outside the CLI/service wrapper runs in —
// costs under 2% on the bench_micro medians. These benchmarks measure
// the primitives directly (poll dormant vs armed, MemCharge, ScopedGuard
// install) and the end-to-end pipeline with and without an (untripped)
// guard installed, so a regression in the poll placement or the install
// slot shows up as a ratio, not a feeling.
#include <benchmark/benchmark.h>

#include "core/api.hpp"
#include "gen/generators.hpp"
#include "guard/guard.hpp"

namespace matchsparse {
namespace {

/// The dormant fast path: one acquire load + branch. This is what every
/// strided cancellation point in sparsify/CSR/matching costs when no
/// guard is installed.
void BM_PollDormant(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard::poll());
  }
}
BENCHMARK(BM_PollDormant);

/// An installed but untripped guard with a far deadline: adds the poll
/// counter and a clock read.
void BM_PollArmed(benchmark::State& state) {
  guard::RunGuard::Limits limits;
  limits.deadline_ms = 1e9;
  guard::RunGuard g(limits);
  const guard::ScopedGuard installed(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard::poll());
  }
}
BENCHMARK(BM_PollArmed);

void BM_ScopedGuardInstall(benchmark::State& state) {
  guard::RunGuard g;
  for (auto _ : state) {
    const guard::ScopedGuard installed(g);
    benchmark::DoNotOptimize(guard::active());
  }
}
BENCHMARK(BM_ScopedGuardInstall);

void BM_MemChargeArmed(benchmark::State& state) {
  guard::RunGuard::Limits limits;
  limits.mem_budget_bytes = 1u << 30;
  guard::RunGuard g(limits);
  const guard::ScopedGuard installed(g);
  for (auto _ : state) {
    const guard::MemCharge charge(4096, "bench array");
    benchmark::DoNotOptimize(charge.bytes());
  }
}
BENCHMARK(BM_MemChargeArmed);

/// End-to-end sparsify+match, dormant vs armed-but-untripped. The two
/// medians should be indistinguishable at the <2% level.
Graph bench_graph() {
  Rng rng(7);
  return gen::unit_disk(20000, gen::unit_disk_radius_for_degree(20000, 12.0),
                        rng);
}

void BM_PipelineDormant(benchmark::State& state) {
  const Graph g = bench_graph();
  ApproxMatchingConfig cfg;
  cfg.beta = 5;
  cfg.eps = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_maximum_matching(g, cfg).matching.size());
  }
}
BENCHMARK(BM_PipelineDormant)->Unit(benchmark::kMillisecond);

void BM_PipelineArmedUntripped(benchmark::State& state) {
  const Graph g = bench_graph();
  ApproxMatchingConfig cfg;
  cfg.beta = 5;
  cfg.eps = 0.3;
  guard::RunGuard::Limits limits;
  limits.deadline_ms = 1e9;
  guard::RunGuard run_guard(limits);
  const guard::ScopedGuard installed(run_guard);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_maximum_matching(g, cfg).matching.size());
  }
}
BENCHMARK(BM_PipelineArmedUntripped)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace matchsparse

BENCHMARK_MAIN();
