// E12 — robustness: the distributed pipeline under message loss,
//       duplication, delay, and fail-stop crashes. The claim under test
//       is graceful degradation: for ANY fault schedule the output is a
//       valid matching, and once faults cease the hardened protocols
//       recover the fault-free quality at a bounded retransmission
//       overhead. Rows land in BENCH_fault_tolerance.json (ndjson).
#include "bench_common.hpp"

#include <cstdlib>

#include "dist/pipeline.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;
using namespace matchsparse::dist;

namespace {

/// Hard validity gate: a bench that publishes numbers for an invalid
/// matching is lying about the robustness claim, so die loudly instead.
void require_valid(const Graph& g, const Matching& m, const char* where) {
  if (!m.is_valid(g)) {
    std::fprintf(stderr, "FATAL: invalid matching in %s\n", where);
    std::exit(1);
  }
}

}  // namespace

int main() {
  banner("E12 fault tolerance (drop x crash sweep, transient faults)",
         "valid matching under any fault schedule; >= (1-eps) of the "
         "fault-free size once faults cease; bounded retransmission "
         "overhead");

  JsonlSink sink("fault_tolerance");
  Rng gen_rng(99);
  const Graph g = gen::erdos_renyi(300, 10.0, gen_rng);
  const std::uint64_t seed = 4242;
  sink.set_seed(seed);

  DistributedMatchingOptions clean_opt;
  const DistributedMatchingResult clean =
      distributed_approx_matching(g, clean_opt, seed);
  require_valid(g, clean.matching, "fault-free baseline");
  if (!clean.all_stages_completed()) {
    std::fprintf(stderr, "FATAL: fault-free baseline did not complete\n");
    return 1;
  }

  Table table("E12  drop x crash sweep (n=300, faults cease at round 60)",
              {"drop", "crash", "completed", "ratio vs clean", "retrans",
               "dropped", "dup", "delayed", "recovery rounds",
               "msg overhead"});
  for (const double drop_prob : {0.0, 0.02, 0.10, 0.25}) {
    for (const double crash_prob : {0.0, 0.002, 0.01}) {
      DistributedMatchingOptions opt;
      opt.faults.drop_prob = drop_prob;
      opt.faults.crash_prob = crash_prob;
      opt.faults.dup_prob = drop_prob / 2.0;
      opt.faults.delay_prob = drop_prob;
      opt.faults.max_extra_delay = 2;
      opt.faults.fault_rounds = 60;

      const DistributedMatchingResult r =
          distributed_approx_matching(g, opt, seed);
      require_valid(g, r.matching, "sweep cell");
      // Transient faults + slack budget: every cell must fully recover.
      if (!r.all_stages_completed()) {
        std::fprintf(stderr,
                     "FATAL: stage incomplete at drop=%.2f crash=%.3f\n",
                     drop_prob, crash_prob);
        return 1;
      }
      const double ratio = static_cast<double>(r.matching.size()) /
                           static_cast<double>(clean.matching.size());
      const double msg_overhead =
          static_cast<double>(r.total_messages()) /
          static_cast<double>(clean.total_messages());
      const std::size_t recovery =
          r.stage_sparsify.recovery_rounds + r.stage_degree.recovery_rounds +
          r.stage_maximal.recovery_rounds + r.stage_augment.recovery_rounds;
      const std::uint64_t duplicated =
          r.stage_sparsify.duplicated + r.stage_degree.duplicated +
          r.stage_maximal.duplicated + r.stage_augment.duplicated;
      const std::uint64_t delayed =
          r.stage_sparsify.delayed + r.stage_degree.delayed +
          r.stage_maximal.delayed + r.stage_augment.delayed;
      table.row()
          .cell(drop_prob, 2)
          .cell(crash_prob, 3)
          .cell(r.all_stages_completed() ? "yes" : "NO")
          .cell(ratio, 4)
          .cell(r.total_retransmissions())
          .cell(r.total_dropped())
          .cell(duplicated)
          .cell(delayed)
          .cell(recovery)
          .cell(msg_overhead, 3);

      JsonRow row;
      row.str("section", "transient_sweep")
          .num("n", static_cast<std::uint64_t>(g.num_vertices()))
          .num("m", g.num_edges())
          .num("drop_prob", drop_prob)
          .num("crash_prob", crash_prob)
          .num("dup_prob", opt.faults.dup_prob)
          .num("delay_prob", opt.faults.delay_prob)
          .num("fault_rounds",
               static_cast<std::uint64_t>(opt.faults.fault_rounds))
          .boolean("all_stages_completed", r.all_stages_completed())
          .num("matching_size", static_cast<std::uint64_t>(r.matching.size()))
          .num("clean_size", static_cast<std::uint64_t>(clean.matching.size()))
          .num("ratio_vs_clean", ratio)
          .num("messages", r.total_messages())
          .num("message_overhead", msg_overhead)
          .num("bits", r.total_bits())
          .num("retransmissions", r.total_retransmissions())
          .num("dropped", r.total_dropped())
          .num("duplicated", duplicated)
          .num("delayed", delayed)
          .num("recovery_rounds", static_cast<std::uint64_t>(recovery))
          .num("total_rounds", static_cast<std::uint64_t>(r.total_rounds()));
      sink.row(row);
    }
  }
  table.print();
  std::printf(
      "# shape check: drop=0/crash=0 is the fault-free fast path "
      "(overhead exactly 1, zero retransmissions); every faulty cell "
      "still completes and lands within eps of the clean ratio — the "
      "graceful-degradation claim. Retransmissions scale with the drop "
      "rate, not with n.\n");

  // Persistent faults: the drop rate never ceases. done() may stay
  // unreachable (frames can die after max_retries), so completion is NOT
  // required — validity and partial quality are.
  Table persistent("E12.b  persistent faults (drops never cease)",
                   {"drop", "completed", "ratio vs clean", "retrans",
                    "dropped", "rounds"});
  for (const double drop_prob : {0.05, 0.15, 0.30}) {
    DistributedMatchingOptions opt;
    opt.faults.drop_prob = drop_prob;
    // fault_rounds stays infinite: no recovery window.
    const DistributedMatchingResult r =
        distributed_approx_matching(g, opt, seed);
    require_valid(g, r.matching, "persistent cell");
    const double ratio = static_cast<double>(r.matching.size()) /
                         static_cast<double>(clean.matching.size());
    persistent.row()
        .cell(drop_prob, 2)
        .cell(r.all_stages_completed() ? "yes" : "no")
        .cell(ratio, 4)
        .cell(r.total_retransmissions())
        .cell(r.total_dropped())
        .cell(r.total_rounds());

    JsonRow row;
    row.str("section", "persistent_faults")
        .num("n", static_cast<std::uint64_t>(g.num_vertices()))
        .num("drop_prob", drop_prob)
        .boolean("all_stages_completed", r.all_stages_completed())
        .num("matching_size", static_cast<std::uint64_t>(r.matching.size()))
        .num("ratio_vs_clean", ratio)
        .num("retransmissions", r.total_retransmissions())
        .num("dropped", r.total_dropped())
        .num("total_rounds", static_cast<std::uint64_t>(r.total_rounds()));
    sink.row(row);
  }
  persistent.print();
  std::printf(
      "# shape check: with faults that never cease the output is still a "
      "valid matching every time (the safety half of the claim); quality "
      "degrades smoothly with the drop rate instead of collapsing.\n");
  return 0;
}
