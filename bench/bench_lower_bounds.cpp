// E5 — Lemma 2.13: any deterministic Δ-marking rule has approximation
//       ratio as bad as n/(2Δ) on the K_n − e family, while randomized
//       G_Δ stays (1+ε) on the same instances.
// E6 — Observation 2.14: G_Δ cannot preserve the exact MCM — on two odd
//       cliques joined by a bridge, P[bridge ∈ G_Δ] <= 4Δ/n, matching the
//       closed form 1 − (1 − 2Δ/n)².
#include "bench_common.hpp"
#include "sparsify/adversary_game.hpp"
#include "sparsify/sparsifier.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;

namespace {

void table_deterministic() {
  Table table(
      "E5  deterministic marking vs randomized G_delta on K_n - e",
      {"n", "delta", "rule", "MCM(G_d)", "ratio", "lemma bound n/2d"});
  const VertexId n = 600;
  const VertexId delta = 6;
  const double full = n / 2.0;

  // The adversarial instance from the proof: the adversary funnels every
  // deterministic rule into a Δ-vertex dominating set D. We realise the
  // same effect constructively: relabel so that the rule's fixed choices
  // concentrate on few vertices. For position-based rules on sorted
  // adjacency arrays, the "first Δ" rule marks only low-id neighbors —
  // so the missing edge hides among high ids and the matching collapses.
  for (auto [rule, name] :
       {std::pair{DeterministicRule::kFirstDelta, "first-delta"},
        std::pair{DeterministicRule::kLastDelta, "last-delta"},
        std::pair{DeterministicRule::kStride, "stride"}}) {
    StreamingStats worst;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed);
      const Graph g = gen::complete_minus_edge(n, rng);
      const EdgeList edges = sparsify_edges_deterministic(g, delta, rule);
      const Graph gd = Graph::from_edges(n, edges);
      worst.add(static_cast<double>(reference_mcm_size(gd)));
    }
    table.row()
        .cell(n)
        .cell(delta)
        .cell(name)
        .cell(worst.min(), 0)
        .cell(full / worst.min(), 2)
        .cell(static_cast<double>(n) / (2.0 * delta), 2);
  }
  // Randomized G_Δ on the same instances at the same tiny Δ, and at the
  // (1+ε)-grade Δ.
  for (VertexId d : {delta, SparsifierParams::practical(2, 0.3).delta}) {
    StreamingStats ratio;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng grng(seed);
      const Graph g = gen::complete_minus_edge(n, grng);
      Rng rng(mix64(seed, 5));
      const Graph gd = sparsify(g, d, rng);
      ratio.add(full / static_cast<double>(reference_mcm_size(gd)));
    }
    table.row()
        .cell(n)
        .cell(d)
        .cell("randomized G_delta")
        .cell(full / ratio.max(), 0)
        .cell(ratio.max(), 2)
        .cell("-");
  }
  table.print();
  std::printf("# shape check: position-based deterministic rules lose the "
              "high-id / low-id region where the non-edge hides only when "
              "the adversarial relabeling aligns with them. A single fixed "
              "rule CAN luck out on a random instance; the lemma says some "
              "instance defeats every rule. The stride rows approach "
              "n/(2*delta); randomized G_delta never degrades.\n");
}

void table_interactive_game() {
  // The lemma's actual proof object: the adaptive probe-answering
  // adversary, played against several deterministic strategies with
  // full query budgets. Every strategy must lose: ratio >= n/(2Δ), or
  // an infeasible output.
  Table table("E5.b  interactive Lemma 2.13 game (adaptive adversary)",
              {"n", "delta", "strategy", "outcome", "ratio",
               "bound n/2d"});
  const DeterministicSparsifierAlgo first_slots =
      [](const ProbeFn& probe, VertexId n, VertexId delta) {
        EdgeList marks;
        for (VertexId v = 0; v < n; ++v) {
          for (VertexId i = 0; i < delta; ++i) {
            marks.push_back(Edge(v, probe(v, i)).normalized());
          }
        }
        return marks;
      };
  const DeterministicSparsifierAlgo strided =
      [](const ProbeFn& probe, VertexId n, VertexId delta) {
        EdgeList marks;
        for (VertexId v = 0; v < n; ++v) {
          for (VertexId i = 0; i < delta; ++i) {
            const auto slot = static_cast<VertexId>(
                (static_cast<std::uint64_t>(i) * (n - 1)) / delta);
            marks.push_back(Edge(v, probe(v, slot)).normalized());
          }
        }
        return marks;
      };
  const DeterministicSparsifierAlgo blind =
      [](const ProbeFn&, VertexId n, VertexId) {
        EdgeList marks;
        for (VertexId v = 0; v + 1 < n; v += 2) marks.emplace_back(v, v + 1);
        return marks;
      };
  for (VertexId n : {200u, 800u}) {
    for (VertexId delta : {4u, 16u}) {
      for (auto [algo, name] :
           {std::pair<const DeterministicSparsifierAlgo*, const char*>{
                &first_slots, "probe first slots"},
            {&strided, "probe strided"},
            {&blind, "blind perfect matching"}}) {
        const GameResult r = play_lemma_2_13_game(n, delta, *algo);
        table.row()
            .cell(n)
            .cell(delta)
            .cell(name)
            .cell(r.infeasible ? "INFEASIBLE output" : "feasible")
            .cell(r.ratio, 2)
            .cell(static_cast<double>(n) / (2.0 * delta), 2);
      }
    }
  }
  table.print();
  std::printf("# shape check: the adversary funnels every probe answer "
              "into its delta-vertex trap set, so feasible outputs match "
              "at most delta edges (ratio >= n/2d exactly), and outputs "
              "that mark unprobed edges get one declared the non-edge.\n");
}

void table_exactness() {
  Table table(
      "E6  bridge survival on two odd cliques + bridge (trials = 400)",
      {"n", "delta", "P[bridge kept] measured", "1-(1-2d/n)^2 predicted",
       "P[exact MCM preserved]"});
  for (VertexId n : {202u, 402u, 802u}) {
    Edge bridge;
    const Graph g = gen::two_cliques_bridge(n, &bridge);
    for (VertexId delta : {2u, 8u}) {
      int kept = 0;
      int exact = 0;
      constexpr int kTrials = 400;
      for (int t = 0; t < kTrials; ++t) {
        Rng rng(mix64(n, static_cast<std::uint64_t>(t) * 2 + delta));
        const EdgeList edges = sparsify_edges(g, delta, rng);
        const bool has_bridge =
            std::binary_search(edges.begin(), edges.end(), bridge);
        kept += has_bridge;
        if (has_bridge) {
          // The bridge is necessary AND sufficient here: each K_{n/2}
          // minus one vertex still has a perfect matching in any
          // sparsifier piece... verify properly on a sample.
          if (t % 20 == 0) {
            const Graph gd = Graph::from_edges(n, edges);
            exact += (reference_mcm_size(gd) == n / 2);
          }
        }
      }
      // Predicted with the 2Δ-tweak marking budget per endpoint: each
      // bridge endpoint samples Δ of its (n/2) incident edges (degree
      // n/2 > 2Δ in all configurations here).
      const double half = n / 2.0;
      const double miss = (1.0 - static_cast<double>(delta) / half);
      const double predicted = 1.0 - miss * miss;
      table.row()
          .cell(n)
          .cell(delta)
          .cell(static_cast<double>(kept) / kTrials, 4)
          .cell(predicted, 4)
          .cell(exact > 0 ? "sometimes (needs bridge)" : "never observed");
    }
  }
  table.print();
  std::printf("# shape check: measured bridge-survival matches the closed "
              "form and vanishes like 2*delta/(n/2) — exact preservation "
              "needs delta = Omega(n), Observation 2.14.\n");
}

}  // namespace

int main() {
  banner("E5/E6 lower bounds (Lemma 2.13, Observation 2.14)",
         "determinism or exactness both force delta ~ n — randomization "
         "and (1+eps) slack are necessary, not artifacts");
  table_deterministic();
  table_interactive_game();
  table_exactness();
  return 0;
}
