// Shared plumbing for the experiment binaries (DESIGN.md section 4).
#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "gen/families.hpp"
#include "matching/blossom.hpp"
#include "matching/bounded_aug.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace matchsparse::bench {

/// Reference MCM size: exact blossom up to `exact_limit` vertices, a
/// near-exact bounded-length matcher beyond (eps = 0.02, so the reference
/// is within 2% and the measured ratios remain meaningful at scale).
inline VertexId reference_mcm_size(const Graph& g,
                                   VertexId exact_limit = 3000) {
  if (g.num_vertices() <= exact_limit) return blossom_mcm(g).size();
  return approx_mcm(g, 0.02).size();
}

/// Runs `trials` independent seeded trials in parallel and feeds each
/// result into a StreamingStats.
inline StreamingStats parallel_trials(
    int trials, const std::function<double(std::uint64_t seed)>& trial) {
  StreamingStats stats;
  std::mutex mu;
  parallel_for(static_cast<std::size_t>(trials), [&](std::size_t t) {
    const double value = trial(static_cast<std::uint64_t>(t) + 1);
    std::lock_guard<std::mutex> lock(mu);
    stats.add(value);
  });
  return stats;
}

/// Prints a banner naming the experiment and the paper claim it tests.
inline void banner(const char* experiment, const char* claim) {
  std::printf("\n######## %s\n# claim: %s\n", experiment, claim);
}

}  // namespace matchsparse::bench
