// Shared plumbing for the experiment binaries (DESIGN.md section 4).
#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "gen/families.hpp"
#include "matching/blossom.hpp"
#include "matching/bounded_aug.hpp"
#include "obs/manifest.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace matchsparse::bench {

/// Reference MCM size: exact blossom up to `exact_limit` vertices, a
/// near-exact bounded-length matcher beyond (eps = 0.02, so the reference
/// is within 2% and the measured ratios remain meaningful at scale).
inline VertexId reference_mcm_size(const Graph& g,
                                   VertexId exact_limit = 3000) {
  if (g.num_vertices() <= exact_limit) return blossom_mcm(g).size();
  return approx_mcm(g, 0.02).size();
}

/// Runs `trials` independent seeded trials in parallel and feeds each
/// result into a StreamingStats.
inline StreamingStats parallel_trials(
    int trials, const std::function<double(std::uint64_t seed)>& trial) {
  StreamingStats stats;
  std::mutex mu;
  parallel_for(static_cast<std::size_t>(trials), [&](std::size_t t) {
    const double value = trial(static_cast<std::uint64_t>(t) + 1);
    std::lock_guard<std::mutex> lock(mu);
    stats.add(value);
  });
  return stats;
}

/// Prints a banner naming the experiment and the paper claim it tests.
inline void banner(const char* experiment, const char* claim) {
  std::printf("\n######## %s\n# claim: %s\n", experiment, claim);
}

/// Composes one flat JSON object. Keys are emitted in call order; values
/// are typed through the num()/str()/boolean() helpers so no manual
/// escaping or formatting happens at call sites.
class JsonRow {
 public:
  JsonRow& str(const char* key, const std::string& value) {
    open(key);
    out_ += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += '"';
    return *this;
  }
  JsonRow& num(const char* key, double value, int precision = 6) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    open(key);
    out_ += buf;
    return *this;
  }
  JsonRow& num(const char* key, std::uint64_t value) {
    open(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonRow& boolean(const char* key, bool value) {
    open(key);
    out_ += value ? "true" : "false";
    return *this;
  }
  std::string finish() const { return out_ + "}"; }

 private:
  void open(const char* key) {
    out_ += first_ ? '{' : ',';
    first_ = false;
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }
  std::string out_;
  bool first_ = true;
};

/// Appends JSON rows to BENCH_<name>.json (one object per line, ndjson)
/// and mirrors each row to stdout, so trajectories land in a
/// machine-readable file alongside the pretty tables.
///
/// Every row is stamped with run-identity fields so historical files
/// stay comparable: "git" (git describe at configure time),
/// "pool_threads" (worker count of the shared pool the run had
/// available — distinct from any per-row workload "threads" column),
/// and, when the bench registered one via set_seed(), "seed".
class JsonlSink {
 public:
  explicit JsonlSink(const std::string& bench_name)
      : file_(std::fopen(("BENCH_" + bench_name + ".json").c_str(), "w")) {}
  ~JsonlSink() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Registers the bench's master RNG seed for the identity stamp.
  void set_seed(std::uint64_t seed) {
    seed_ = seed;
    has_seed_ = true;
  }

  void row(const JsonRow& r) {
    JsonRow stamped = r;
    stamped.str("git", obs::git_describe())
        .num("pool_threads",
             static_cast<std::uint64_t>(default_pool().size()));
    if (has_seed_) stamped.num("seed", seed_);
    const std::string line = stamped.finish();
    std::printf("%s\n", line.c_str());
    if (file_ != nullptr) {
      std::fprintf(file_, "%s\n", line.c_str());
      std::fflush(file_);
    }
  }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t seed_ = 0;
  bool has_seed_ = false;
};

}  // namespace matchsparse::bench
