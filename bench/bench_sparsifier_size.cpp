// E2 — Observation 2.10: |E(G_Δ)| <= 2·|MCM(G)|·(Δ+β)  (and <= n·Δ),
// E3 — Observation 2.12: arboricity(G_Δ) <= 2Δ.
// (Our builder uses the Section 3.1 low-degree tweak — vertices of degree
// <= 2Δ keep everything — which doubles both constants; the tables verify
// the tweaked bounds 4|MCM|(Δ+β) / n·2Δ and arboricity <= 4Δ.)
#include "bench_common.hpp"
#include "graph/measures.hpp"
#include "sparsify/sparsifier.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;

int main() {
  banner("E2/E3 sparsifier size and arboricity (Observations 2.10, 2.12)",
         "|E_delta| = O(|MCM|*delta) even when n >> |MCM|; "
         "arboricity(G_delta) = O(delta)");

  Table size_table(
      "E2  size bounds (low-MCM instances stress the refined bound)",
      {"instance", "n", "m", "delta", "|MCM|", "|E_d|", "2|MCM|(2d+b)",
       "2n*d", "refined ok", "naive ok"});

  struct Case {
    std::string name;
    Graph g;
    VertexId beta;
  };
  std::vector<Case> cases;
  {
    Rng rng(1);
    cases.push_back({"K_1200", gen::complete_graph(1200), 1});
    // Low-MCM instance: a clique plus isolated vertices. |MCM| = 100 while
    // n = 3000, so the refined 2|MCM|(2Δ+β) bound is ~15x tighter than
    // the naive 2nΔ. (By Lemma 2.2 a *connected* bounded-β graph cannot
    // have a small MCM, so isolated vertices are the honest way to stress
    // the refined bound — the paper's remark after Theorem 2.1 makes the
    // same normalisation.)
    const EdgeList clique_edges = gen::complete_graph(200).edge_list();
    cases.push_back({"K_200 + 2800 isolated",
                     Graph::from_edges(3000, clique_edges), 1});
    cases.push_back({"unitdisk n=4000",
                     gen::unit_disk(4000, gen::unit_disk_radius_for_degree(
                                              4000, 30.0),
                                    rng),
                     5});
    cases.push_back({"cliqueunion n=3000",
                     gen::clique_union(3000, 24, 4, rng), 4});
  }

  for (const auto& c : cases) {
    const VertexId delta = 8;
    Rng rng(7);
    const Graph gd = sparsify(c.g, delta, rng);
    const auto mcm = static_cast<std::uint64_t>(reference_mcm_size(c.g));
    const std::uint64_t refined = 2 * mcm * (2 * delta + c.beta);
    const std::uint64_t naive =
        2ull * c.g.num_vertices() * delta;
    size_table.row()
        .cell(c.name)
        .cell(c.g.num_vertices())
        .cell(c.g.num_edges())
        .cell(delta)
        .cell(mcm)
        .cell(gd.num_edges())
        .cell(refined)
        .cell(naive)
        .cell(gd.num_edges() <= refined ? "yes" : "NO")
        .cell(gd.num_edges() <= naive ? "yes" : "NO");
  }
  size_table.print();

  Table arb_table("E3  arboricity of G_delta vs the 4*delta bound",
                  {"family", "n", "delta", "arboricity in", "bound 4d",
                   "ok"});
  for (const auto& family : gen::standard_families()) {
    const VertexId n = family.name == "complete" ? 800 : 3000;
    const Graph g = family.make(n, 3);
    for (VertexId delta : {4u, 16u}) {
      Rng rng(11);
      const Graph gd = sparsify(g, delta, rng);
      const auto est = estimate_arboricity(gd);
      char bracket[64];
      std::snprintf(bracket, sizeof(bracket), "[%.0f, %.0f]", est.lower,
                    est.upper);
      arb_table.row()
          .cell(family.name)
          .cell(n)
          .cell(delta)
          .cell(bracket)
          .cell(4 * delta)
          .cell(est.lower <= 4.0 * delta ? "yes" : "NO");
    }
  }
  arb_table.print();
  return 0;
}
