// E1 — Theorem 2.1: G_Δ is a (1+ε)-matching sparsifier w.h.p.
//
// Table 1: per family × ε, the measured MCM(G)/MCM(G_Δ) ratio across
//          trials versus the 1+ε target, at the practically scaled Δ.
// Table 2: ratio as a function of Δ on a fixed dense instance — the
//          Θ((β/ε)·log(1/ε)) knee: quality saturates once Δ passes the
//          theory's threshold shape.
#include "bench_common.hpp"
#include "sparsify/sparsifier.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;

namespace {

void table_family_eps() {
  // Dense instances of each bounded-β family: the sparsifier only has
  // something to do when degrees exceed 2Δ, i.e. m >> n·Δ — the regime
  // Theorem 3.1 targets. (At the standard-registry densities the
  // low-degree tweak keeps the whole graph and the claim is vacuous.)
  struct DenseFamily {
    std::string name;
    VertexId beta;
    std::function<Graph(std::uint64_t)> make;
  };
  const std::vector<DenseFamily> families = {
      {"complete K_900", 1,
       [](std::uint64_t) { return gen::complete_graph(900); }},
      {"cliqueunion deg~390", 4,
       [](std::uint64_t seed) {
         Rng rng(seed);
         return gen::clique_union(2400, 100, 4, rng);
       }},
      {"unitdisk deg~300", 5,
       [](std::uint64_t seed) {
         Rng rng(seed);
         return gen::unit_disk(
             2400, gen::unit_disk_radius_for_degree(2400, 300.0), rng);
       }},
      {"line of dense ER", 2,
       [](std::uint64_t seed) {
         Rng rng(seed);
         return gen::line_graph_of_er(200, 100.0, rng);  // ~10k vertices
       }},
      {"unitint deg~300", 2,
       [](std::uint64_t seed) {
         Rng rng(seed);
         return gen::unit_interval_graph(2400, 150.0 / 2400.0, rng);
       }},
  };

  Table table("E1.a  sparsifier quality on dense bounded-beta instances "
              "(trials = 8; reference matcher eps = 0.05)",
              {"instance", "beta<=", "eps", "delta", "|E_d|/m", "ratio mean",
               "ratio max", "target 1+eps", "ok"});
  const int kTrials = 8;
  for (const auto& family : families) {
    for (double eps : {0.5, 0.3}) {
      const VertexId delta =
          SparsifierParams::practical(family.beta, eps).delta;
      StreamingStats edge_frac;
      std::mutex mu;
      const StreamingStats ratio =
          parallel_trials(kTrials, [&](std::uint64_t seed) {
            const Graph g = family.make(seed);
            Rng rng(mix64(seed, 17));
            const Graph gd = sparsify(g, delta, rng);
            const double full = approx_mcm(g, 0.05).size();
            const double kept =
                std::max<VertexId>(1, approx_mcm(gd, 0.05).size());
            {
              std::lock_guard<std::mutex> lock(mu);
              edge_frac.add(static_cast<double>(gd.num_edges()) /
                            static_cast<double>(g.num_edges()));
            }
            return full / kept;
          });
      table.row()
          .cell(family.name)
          .cell(family.beta)
          .cell(eps, 2)
          .cell(delta)
          .cell(edge_frac.mean(), 3)
          .cell(ratio.mean(), 4)
          .cell(ratio.max(), 4)
          .cell(1.0 + eps, 2)
          .cell(ratio.max() <= 1.0 + eps ? "yes" : "NO");
    }
  }
  table.print();
  std::printf("# shape check: |E_d|/m well below 1 (the sparsifier is "
              "doing real work) while every measured ratio sits far "
              "inside 1+eps — the proof constant 20 is ~10x conservative, "
              "see also E1.b's knee.\n");
}

void table_ratio_vs_delta() {
  Table table("E1.b  ratio vs delta (knee at Theta((beta/eps)log(1/eps)))",
              {"instance", "delta", "ratio mean", "ratio max", "|E_d|/m"});
  struct Inst {
    std::string name;
    Graph g;
  };
  std::vector<Inst> instances;
  instances.push_back({"K_900 (beta=1)", gen::complete_graph(900)});
  {
    Rng rng(19);
    instances.push_back(
        {"cliqueunion div=8 (beta<=8)",
         gen::clique_union(1800, 80, 8, rng)});
  }
  for (const Inst& inst : instances) {
    const double full = approx_mcm(inst.g, 0.05).size();
    for (VertexId delta : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      StreamingStats ratio;
      double frac = 0;
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        const Graph gd = sparsify(inst.g, delta, rng);
        ratio.add(full /
                  std::max(1.0, static_cast<double>(
                                    approx_mcm(gd, 0.05).size())));
        frac = static_cast<double>(gd.num_edges()) /
               static_cast<double>(inst.g.num_edges());
      }
      table.row().cell(inst.name).cell(delta).cell(ratio.mean(), 4)
          .cell(ratio.max(), 4).cell(frac, 4);
    }
  }
  table.print();
}

void table_delta_star_vs_beta() {
  // The linear-in-beta knee: smallest power-of-two Δ achieving ratio
  // <= 1.1 on clique unions of growing diversity (β <= div).
  Table table("E1.c  minimal delta for ratio <= 1.1 vs beta (cliqueunion)",
              {"beta (=diversity)", "delta*", "delta*/beta"});
  for (VertexId beta : {2u, 4u, 8u, 16u}) {
    Rng grng(beta);
    const Graph g = gen::clique_union(1600, 60, beta, grng);
    const double full = approx_mcm(g, 0.05).size();
    VertexId found = 0;
    for (VertexId delta = 1; delta <= 256; delta *= 2) {
      double worst = 1.0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(mix64(beta, seed));
        const Graph gd = sparsify(g, delta, rng);
        worst = std::max(
            worst, full / std::max(1.0, static_cast<double>(
                                            approx_mcm(gd, 0.05).size())));
      }
      if (worst <= 1.1) {
        found = delta;
        break;
      }
    }
    table.row()
        .cell(beta)
        .cell(found)
        .cell(static_cast<double>(found) / beta, 3);
  }
  table.print();
  std::printf("# finding: on natural random instances delta* is a small "
              "constant, flat in beta — random k-out subgraphs of dense "
              "graphs carry near-perfect matchings regardless. The "
              "Theta((beta/eps)log(1/eps)) requirement of Theorem 2.1 is "
              "worst-case: the adversarial structures where budget truly "
              "matters are exercised in E5/E6 (bench_lower_bounds), and "
              "the theorem's value is the *guarantee*, which E1.a confirms "
              "is comfortably met at the practical delta.\n");
}

}  // namespace

int main() {
  banner("E1 sparsifier quality (Theorem 2.1)",
         "G_delta with delta = Theta((beta/eps) log(1/eps)) preserves the "
         "MCM within 1+eps w.h.p.");
  table_family_eps();
  table_ratio_vs_delta();
  table_delta_star_vs_beta();
  return 0;
}
