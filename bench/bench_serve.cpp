// Daemon throughput/latency: sustained QPS x tail latency against a real
// in-process serve::Server (DESIGN.md §15), driven through the same
// serve::Client the tests use, so the full production path — frame
// codec, session threads, admission, cache, per-request RunContext —
// sits inside every measured request.
//
// Two workloads per client count (1/2/4/8 concurrent connections), both
// fault-free (no cancels, no budget clamps, a generous per-request
// deadline that a healthy server never approaches):
//   cold — PIPELINE requests: cache bypassed, every request pays the
//          full sparsify -> match build;
//   hot  — MATCH requests against a pre-warmed cache: every request is
//          a hit and pays only the matching stage.
//
// Gates (nonzero exit on violation, so CI can hold the line):
//   1. every reply is kOk with zero errors/sheds (the workload is
//      fault-free, so anything else is a server bug or an overrun
//      deadline surfacing as degradation);
//   2. p99 latency stays under the per-request deadline on every row;
//   3. hot p50 is measurably cheaper than cold p50 at every client
//      count (the cache is the daemon's reason to exist);
//   4. the telemetry plane (DESIGN.md §16) is hot-path cheap: with two
//      otherwise-identical servers — histograms/counters on vs off —
//      interleaved rounds of the hot MATCH workload must keep the
//      telemetry-on min-of-rounds p50 within 1.05x of telemetry-off.
//
// A third section prices resilience (DESIGN.md §17): the hot MATCH
// workload again, but through serve::RetryingClient over seeded
// FaultTransports that reset the connection mid-anything at 0% / 1% /
// 5% per wire operation. Reported per rate: survivor p99 and goodput
// (completed logical requests per second). Gated: every survivor is
// bit-identical to the fault-free baseline, and the 0% row pays zero
// retries — the retry machinery is free when nothing fails.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "gen/generators.hpp"
#include "serve/client.hpp"
#include "serve/diffcheck.hpp"
#include "serve/protocol.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "util/rng.hpp"

namespace matchsparse {
namespace {

using serve::Client;
using serve::JobRequest;
using serve::LoadRequest;
using serve::Server;
using serve::ServerOptions;

constexpr std::uint64_t kSeed = 0x5e7ebe9c;
constexpr double kDeadlineMs = 5000.0;  // generous: a healthy p99 is ~10x
                                        // lower even at 8 clients per core

// beta = 1 keeps the matching stage to the cheap maximal rung, so on the
// dense workload graph the O(m) sparsifier build dominates a cold
// request — which is exactly the cost a cache hit is supposed to shed.
JobRequest job() {
  JobRequest req;
  req.source = "g";
  req.beta = 1;
  req.eps = 0.25;
  req.seed = 7;
  req.threads = 1;  // concurrency comes from connections, not lanes
  req.deadline_ms = kDeadlineMs;
  return req;
}

struct Percentiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

Percentiles percentiles(std::vector<double> ms) {
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(ms.size()))) - 1;
    return ms[std::min(idx, ms.size() - 1)];
  };
  return {at(0.50), at(0.95), at(0.99)};
}

struct WorkloadResult {
  std::vector<double> latencies_ms;
  double wall_s = 0.0;
  std::uint64_t not_ok = 0;  // refused, transport-dead, or non-kOk status
};

struct ChaosResult {
  std::vector<double> survivor_ms;  // wall latency per completed logical
                                    // request, retries and backoff included
  double wall_s = 0.0;
  std::uint64_t survivors = 0;
  std::uint64_t giveups = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t mismatched = 0;  // survivors that diverged from baseline
};

/// The hot MATCH workload through RetryingClients whose every dial is
/// wrapped in a seeded FaultTransport resetting at `reset_rate` per
/// wire operation (plus light short-read fragmentation when faults are
/// on at all).
ChaosResult run_chaos_workload(Server& server, int clients, int per_client,
                               double reset_rate, std::uint64_t salt,
                               const serve::RunSignature& baseline) {
  ChaosResult result;
  std::mutex mu;
  std::atomic<std::uint64_t> dials{0};
  WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto connect = [&]() {
        serve::TransportFaultPlan plan;
        plan.seed = salt + dials.fetch_add(1);
        plan.reset = reset_rate;
        plan.short_io = reset_rate > 0.0 ? 0.05 : 0.0;
        auto inner = std::make_unique<serve::FdTransport>(
            server.connect_in_process());
        return Client(
            std::make_unique<serve::FaultTransport>(std::move(inner), plan));
      };
      serve::RetryPolicy policy;
      policy.max_attempts = 10;
      policy.base_backoff_ms = 0.5;
      policy.max_backoff_ms = 5.0;
      policy.io_timeout_ms = kDeadlineMs;
      policy.seed = salt + 1000 + static_cast<std::uint64_t>(c);
      serve::RetryingClient rc(std::move(connect), policy);

      std::vector<double> local;
      std::uint64_t ok = 0, bad = 0, diverged = 0;
      for (int r = 0; r < per_client; ++r) {
        WallTimer timer;
        const auto rep = rc.match(job());
        const double ms = timer.seconds() * 1e3;
        if (!rep.has_value()) {
          ++bad;
          continue;
        }
        ++ok;
        local.push_back(ms);
        if (!serve::divergence(baseline, serve::signature_of(*rep)).empty()) {
          ++diverged;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.survivor_ms.insert(result.survivor_ms.end(), local.begin(),
                                local.end());
      result.survivors += ok;
      result.giveups += bad;
      result.mismatched += diverged;
      result.retries += rc.retry_stats().retries;
      // The first dial per worker is connectivity, not recovery.
      result.reconnects += rc.retry_stats().reconnects > 0
                               ? rc.retry_stats().reconnects - 1
                               : 0;
    });
  }
  for (auto& t : threads) t.join();
  result.wall_s = wall.seconds();
  return result;
}

/// `clients` connections each fire `per_client` back-to-back requests of
/// one kind; per-request wall latency lands in the shared vector.
WorkloadResult run_workload(Server& server, int clients, int per_client,
                            bool cold) {
  WorkloadResult result;
  std::mutex mu;
  WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      Client client(server.connect_in_process());
      std::vector<double> local;
      std::uint64_t bad = 0;
      local.reserve(static_cast<std::size_t>(per_client));
      for (int r = 0; r < per_client; ++r) {
        WallTimer timer;
        const auto rep = cold ? client.pipeline(job()) : client.match(job());
        local.push_back(timer.seconds() * 1e3);
        if (!rep || static_cast<RunStatus>(rep->status) != RunStatus::kOk) {
          ++bad;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_ms.insert(result.latencies_ms.end(), local.begin(),
                                 local.end());
      result.not_ok += bad;
    });
  }
  for (auto& t : threads) t.join();
  result.wall_s = wall.seconds();
  return result;
}

}  // namespace
}  // namespace matchsparse

int main() {
  using namespace matchsparse;
  using namespace matchsparse::bench;

  banner("serve QPS x tail latency",
         "cached sparsifiers make hot requests measurably cheaper than "
         "cold, and the no-fault p99 stays under the request deadline");
  JsonlSink sink("serve");
  sink.set_seed(kSeed);

  ServerOptions opts;
  opts.publish_request_metrics = false;
  // This bench prices latency, not admission: the default inflight cap
  // equals the widest client sweep, and a slot is released only after
  // its reply is on the wire, so back-to-back senders would see
  // spurious sheds at 8 clients. Uncap it.
  opts.max_inflight = 0;
  Server server(opts);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "server start failed: %s\n", err.c_str());
    return 1;
  }

  Rng rng(kSeed);
  const VertexId n = 10000;
  const Graph g =
      gen::unit_disk(n, gen::unit_disk_radius_for_degree(n, 64.0), rng);
  {
    Client loader(server.connect_in_process());
    LoadRequest load;
    load.source = "g";
    load.n = g.num_vertices();
    load.edges = g.edge_list();
    if (!loader.load(load).has_value()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loader.last_error().message.c_str());
      return 1;
    }
    // Warm the (seed, threads) lane the hot workload replays, so every
    // hot request below is a cache hit.
    if (!loader.sparsify(job()).has_value()) {
      std::fprintf(stderr, "warm sparsify failed: %s\n",
                   loader.last_error().message.c_str());
      return 1;
    }
  }

  Table table("serve QPS x tail latency (fault-free workloads)",
              {"mode", "clients", "requests", "qps", "p50_ms", "p95_ms",
               "p99_ms", "not_ok"});
  bool gates_ok = true;
  std::vector<double> cold_p50(9, 0.0);

  for (const bool cold : {true, false}) {
    for (const int clients : {1, 2, 4, 8}) {
      // Cold requests pay a full build, so fewer of them saturate the
      // same wall budget.
      const int per_client = cold ? 10 : 150;
      const auto res = run_workload(server, clients, per_client, cold);
      const auto p = percentiles(res.latencies_ms);
      const double qps =
          static_cast<double>(res.latencies_ms.size()) / res.wall_s;
      const char* mode = cold ? "cold" : "hot";
      table.row()
          .cell(mode)
          .cell(clients)
          .cell(static_cast<std::uint64_t>(res.latencies_ms.size()))
          .cell(qps)
          .cell(p.p50)
          .cell(p.p95)
          .cell(p.p99)
          .cell(res.not_ok);
      JsonRow row;
      row.str("bench", "serve")
          .str("mode", mode)
          .num("clients", static_cast<std::uint64_t>(clients))
          .num("n", static_cast<std::uint64_t>(n))
          .num("m", static_cast<std::uint64_t>(g.num_edges()))
          .num("requests",
               static_cast<std::uint64_t>(res.latencies_ms.size()))
          .num("qps", qps)
          .num("p50_ms", p.p50)
          .num("p95_ms", p.p95)
          .num("p99_ms", p.p99)
          .num("deadline_ms", kDeadlineMs)
          .num("not_ok", res.not_ok);
      sink.row(row);

      if (res.not_ok != 0) {
        std::fprintf(stderr, "GATE: %s/%d clients: %llu non-kOk replies on "
                             "the no-fault workload\n",
                     mode, clients,
                     static_cast<unsigned long long>(res.not_ok));
        gates_ok = false;
      }
      if (p.p99 > kDeadlineMs) {
        std::fprintf(stderr, "GATE: %s/%d clients: p99 %.2f ms exceeds the "
                             "per-request deadline %.0f ms\n",
                     mode, clients, p.p99, kDeadlineMs);
        gates_ok = false;
      }
      if (cold) {
        cold_p50[static_cast<std::size_t>(clients)] = p.p50;
      } else if (!(p.p50 < 0.8 * cold_p50[static_cast<std::size_t>(clients)])) {
        std::fprintf(stderr, "GATE: %d clients: hot p50 %.2f ms is not "
                             "measurably cheaper than cold p50 %.2f ms\n",
                     clients, p.p50,
                     cold_p50[static_cast<std::size_t>(clients)]);
        gates_ok = false;
      }
    }
  }
  table.print();

  // -------------------------------------------------------------------
  // Telemetry overhead: the same hot MATCH workload against a second,
  // telemetry-off server, interleaved round for round so machine drift
  // hits both sides alike; min-of-rounds p50 is the noise-resistant
  // statistic the gate compares.
  ServerOptions off_opts = opts;
  off_opts.telemetry = false;
  Server server_off(off_opts);
  if (!server_off.start(&err)) {
    std::fprintf(stderr, "telemetry-off server start failed: %s\n",
                 err.c_str());
    return 1;
  }
  {
    Client loader(server_off.connect_in_process());
    LoadRequest load;
    load.source = "g";
    load.n = g.num_vertices();
    load.edges = g.edge_list();
    if (!loader.load(load).has_value() ||
        !loader.sparsify(job()).has_value()) {
      std::fprintf(stderr, "telemetry-off warmup failed: %s\n",
                   loader.last_error().message.c_str());
      return 1;
    }
  }

  constexpr int kOverheadRounds = 5;
  constexpr int kOverheadRequests = 200;
  double on_p50 = kDeadlineMs, off_p50 = kDeadlineMs;
  std::uint64_t overhead_bad = 0;
  for (int round = 0; round < kOverheadRounds; ++round) {
    for (const bool telemetry_on : {true, false}) {
      Server& target = telemetry_on ? server : server_off;
      const auto res = run_workload(target, 1, kOverheadRequests,
                                    /*cold=*/false);
      overhead_bad += res.not_ok;
      const double p50 = percentiles(res.latencies_ms).p50;
      double& best = telemetry_on ? on_p50 : off_p50;
      best = std::min(best, p50);
    }
  }
  const double overhead_ratio = on_p50 / off_p50;
  Table overhead("telemetry overhead (hot MATCH, min-of-rounds p50)",
                 {"telemetry", "p50_ms", "ratio"});
  overhead.row().cell("off").cell(off_p50).cell(1.0);
  overhead.row().cell("on").cell(on_p50).cell(overhead_ratio);
  overhead.print();
  {
    JsonRow row;
    row.str("bench", "serve")
        .str("mode", "telemetry-overhead")
        .num("rounds", static_cast<std::uint64_t>(kOverheadRounds))
        .num("requests_per_round",
             static_cast<std::uint64_t>(kOverheadRequests))
        .num("p50_ms_telemetry_on", on_p50)
        .num("p50_ms_telemetry_off", off_p50)
        .num("ratio", overhead_ratio)
        .num("not_ok", overhead_bad);
    sink.row(row);
  }
  if (overhead_bad != 0) {
    std::fprintf(stderr, "GATE: telemetry-overhead rounds saw %llu non-kOk "
                         "replies on the no-fault workload\n",
                 static_cast<unsigned long long>(overhead_bad));
    gates_ok = false;
  }
  if (overhead_ratio > 1.05) {
    std::fprintf(stderr, "GATE: telemetry-on hot p50 %.4f ms is %.3fx the "
                         "telemetry-off p50 %.4f ms (cap 1.05x)\n",
                 on_p50, overhead_ratio, off_p50);
    gates_ok = false;
  }
  server_off.stop();

  // -------------------------------------------------------------------
  // Resilience pricing (DESIGN.md §17): hot MATCH through RetryingClient
  // at injected connection-reset rates. A dedicated server keeps the
  // torn-frame errors this provokes out of the fault-free gate above.
  Server chaos_server(opts);
  if (!chaos_server.start(&err)) {
    std::fprintf(stderr, "chaos server start failed: %s\n", err.c_str());
    return 1;
  }
  serve::RunSignature chaos_baseline;
  {
    Client loader(chaos_server.connect_in_process());
    LoadRequest load;
    load.source = "g";
    load.n = g.num_vertices();
    load.edges = g.edge_list();
    if (!loader.load(load).has_value() ||
        !loader.sparsify(job()).has_value()) {
      std::fprintf(stderr, "chaos warmup failed: %s\n",
                   loader.last_error().message.c_str());
      return 1;
    }
    const auto solo = loader.match(job());
    if (!solo.has_value()) {
      std::fprintf(stderr, "chaos baseline failed: %s\n",
                   loader.last_error().message.c_str());
      return 1;
    }
    chaos_baseline = serve::signature_of(*solo);
  }

  Table chaos_table(
      "resilience under injected resets (hot MATCH via RetryingClient)",
      {"reset_rate", "clients", "survivors", "giveups", "retries",
       "reconnects", "p99_ms", "goodput_qps"});
  constexpr int kChaosClients = 4;
  constexpr int kChaosPerClient = 100;
  for (const double rate : {0.0, 0.01, 0.05}) {
    const auto res = run_chaos_workload(
        chaos_server, kChaosClients, kChaosPerClient, rate,
        kSeed ^ static_cast<std::uint64_t>(rate * 1e4), chaos_baseline);
    const double p99 = res.survivor_ms.empty()
                           ? 0.0
                           : percentiles(res.survivor_ms).p99;
    const double goodput =
        static_cast<double>(res.survivors) / res.wall_s;
    chaos_table.row()
        .cell(rate, 2)
        .cell(kChaosClients)
        .cell(res.survivors)
        .cell(res.giveups)
        .cell(res.retries)
        .cell(res.reconnects)
        .cell(p99)
        .cell(goodput);
    JsonRow row;
    row.str("bench", "serve")
        .str("mode", "chaos")
        .num("reset_rate", rate)
        .num("clients", static_cast<std::uint64_t>(kChaosClients))
        .num("requests",
             static_cast<std::uint64_t>(kChaosClients * kChaosPerClient))
        .num("survivors", res.survivors)
        .num("giveups", res.giveups)
        .num("retries", res.retries)
        .num("reconnects", res.reconnects)
        .num("p99_ms", p99)
        .num("goodput_qps", goodput)
        .num("mismatched", res.mismatched);
    sink.row(row);

    // Gates: survivors are bit-identical to the fault-free baseline at
    // every rate, and the machinery is free when nothing fails.
    if (res.mismatched != 0) {
      std::fprintf(stderr, "GATE: chaos rate %.2f: %llu survivors diverged "
                           "from the fault-free baseline\n",
                   rate, static_cast<unsigned long long>(res.mismatched));
      gates_ok = false;
    }
    if (res.survivors == 0) {
      std::fprintf(stderr, "GATE: chaos rate %.2f: nothing survived\n", rate);
      gates_ok = false;
    }
    if (rate == 0.0 && (res.retries != 0 || res.giveups != 0)) {
      std::fprintf(stderr, "GATE: fault-free retry workload paid %llu "
                           "retries / %llu giveups\n",
                   static_cast<unsigned long long>(res.retries),
                   static_cast<unsigned long long>(res.giveups));
      gates_ok = false;
    }
  }
  chaos_table.print();
  chaos_server.stop();

  const auto t = server.telemetry();
  if (t.errors != 0 || t.shed != 0) {
    std::fprintf(stderr, "GATE: server refused work on the no-fault "
                         "workload (errors=%llu shed=%llu)\n",
                 static_cast<unsigned long long>(t.errors),
                 static_cast<unsigned long long>(t.shed));
    gates_ok = false;
  }
  std::printf("\nserve bench gates: %s\n", gates_ok ? "OK" : "FAILED");
  return gates_ok ? 0 : 1;
}
