// E15 — ablations of the design choices DESIGN.md calls out:
//  (a) the Section 3.1 low-degree tweak (keep the whole neighborhood when
//      deg <= 2Δ) versus sampling Δ everywhere;
//  (b) the practical Δ scale versus the proof's constant 20;
//  (c) union-of-marks (the paper) versus both-endpoints-must-mark (the
//      Solomon ITCS'18 rule, which Lemma 2.13's discussion says fails in
//      bounded-β graphs);
//  (d) the dynamic window matcher's budget_scale pacing knob.
#include "bench_common.hpp"

#include "dynamic/adversary.hpp"
#include "dynamic/window_matcher.hpp"
#include "sparsify/degree_sparsifier.hpp"
#include "sparsify/sparsifier.hpp"
#include "util/rng.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;

namespace {

/// Variant builder: sample Δ everywhere (no low-degree tweak).
EdgeList sparsify_no_tweak(const Graph& g, VertexId delta, Rng& rng) {
  EdgeList marked;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId deg = g.degree(v);
    if (deg == 0) continue;
    for (std::uint64_t i :
         rng.sample_without_replacement(deg, std::min(deg, delta))) {
      marked.push_back(
          Edge(v, g.neighbor(v, static_cast<VertexId>(i))).normalized());
    }
  }
  normalize_edge_list(marked);
  return marked;
}

/// Variant: keep only edges marked from BOTH sides (Solomon's rule).
EdgeList sparsify_both_endpoints(const Graph& g, VertexId delta, Rng& rng) {
  EdgeList marks;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId deg = g.degree(v);
    if (deg == 0) continue;
    for (std::uint64_t i :
         rng.sample_without_replacement(deg, std::min(deg, delta))) {
      marks.push_back(
          Edge(v, g.neighbor(v, static_cast<VertexId>(i))).normalized());
    }
  }
  std::sort(marks.begin(), marks.end());
  EdgeList kept;
  for (std::size_t i = 0; i + 1 < marks.size(); ++i) {
    if (marks[i] == marks[i + 1]) {
      kept.push_back(marks[i]);
      ++i;
    }
  }
  return kept;
}

void table_marking_rules() {
  Table table("E15.a  marking-rule ablation on K_900 (8 trials)",
              {"rule", "delta", "|E_d|", "ratio mean", "ratio max",
               "max degree"});
  const VertexId n = 900;
  const Graph g = gen::complete_graph(n);
  const double full = n / 2.0;
  const VertexId delta = 8;

  struct Rule {
    const char* name;
    std::function<EdgeList(const Graph&, VertexId, Rng&)> build;
  };
  const std::vector<Rule> rules = {
      {"union of marks + tweak (paper)",
       [](const Graph& gg, VertexId d, Rng& r) {
         return sparsify_edges(gg, d, r);
       }},
      {"union of marks, no tweak", sparsify_no_tweak},
      {"both endpoints must mark", sparsify_both_endpoints},
  };
  for (const Rule& rule : rules) {
    StreamingStats ratio;
    EdgeIndex edges = 0;
    VertexId max_deg = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed);
      const EdgeList el = rule.build(g, delta, rng);
      const Graph gd = Graph::from_edges(n, el);
      edges = gd.num_edges();
      max_deg = std::max(max_deg, gd.max_degree());
      ratio.add(full / std::max(1.0, static_cast<double>(
                                         reference_mcm_size(gd))));
    }
    table.row()
        .cell(rule.name)
        .cell(delta)
        .cell(edges)
        .cell(ratio.mean(), 4)
        .cell(ratio.max(), 4)
        .cell(max_deg);
  }
  table.print();
  std::printf("# The tweak is a constant-factor implementation detail "
              "(identical quality), but the both-endpoints rule collapses "
              "already on K_n: an edge survives only if two independent "
              "delta/(n-1) draws coincide, leaving ~delta^2/n edges. The "
              "structured instance below shows the same failure against "
              "forced matching edges.\n");

  // The separating instance: a perfect matching of "hub pairs" where one
  // endpoint of each pair is hub-degree and the other is pendant-ish.
  // Both-endpoints marking keeps an edge only if the hub also picked it:
  // probability ~ delta/deg -> matching collapses. Union marking keeps
  // every pendant's edge: the pendant marks it.
  Table sep("E15.a'  separating instance: hubs with private partners",
            {"rule", "|MCM| kept", "of optimum"});
  // Build: h hubs; hub i has a private partner p_i (the matching edge)
  // plus edges to all other hubs (making deg(hub) large). beta <= ~2.
  const VertexId hubs = 300;
  EdgeList edges;
  for (VertexId i = 0; i < hubs; ++i) {
    edges.emplace_back(i, hubs + i);  // private partner
    for (VertexId j = i + 1; j < hubs; ++j) edges.emplace_back(i, j);
  }
  const Graph sep_g = Graph::from_edges(2 * hubs, edges);
  const double sep_opt = hubs;  // all private pairs
  for (const Rule& rule : rules) {
    StreamingStats kept;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed);
      const Graph gd =
          Graph::from_edges(2 * hubs, rule.build(sep_g, delta, rng));
      kept.add(static_cast<double>(reference_mcm_size(gd)));
    }
    sep.row()
        .cell(rule.name)
        .cell(kept.mean(), 1)
        .cell(kept.mean() / sep_opt, 4);
  }
  sep.print();
  std::printf("# shape check: union marking keeps ~100%% (each pendant "
              "marks its only edge); the both-endpoints rule keeps an "
              "edge only when the hub reciprocates (~delta/deg) — exactly "
              "why the paper cannot reuse Solomon's trick in bounded-beta "
              "graphs.\n");
}

void table_delta_scale() {
  Table table("E15.b  practical vs proof constants (K_700, eps=0.3)",
              {"delta scale", "delta", "|E_d|/m", "ratio max (8 trials)"});
  const VertexId n = 700;
  const Graph g = gen::complete_graph(n);
  const double full = n / 2.0;
  for (double scale : {0.25, 0.5, 1.0, 2.0, 20.0}) {
    const VertexId delta =
        SparsifierParams::practical(1, 0.3, scale).delta;
    StreamingStats ratio;
    double frac = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed);
      const Graph gd = sparsify(g, delta, rng);
      frac = static_cast<double>(gd.num_edges()) /
             static_cast<double>(g.num_edges());
      ratio.add(full / std::max(1.0, static_cast<double>(
                                         reference_mcm_size(gd))));
    }
    table.row().cell(scale, 2).cell(delta).cell(frac, 4).cell(ratio.max(), 4);
  }
  table.print();
  std::printf("# scale=20 is the proof constant (Theorem 2.1); every "
              "scale >= 0.25 already achieves ratio 1.0 here — the "
              "guarantee is what the constant buys, not the typical "
              "case.\n");
}

void table_budget_scale() {
  Table table("E15.c  window-matcher pacing knob (unit-disk churn)",
              {"budget_scale", "mean opt/alg", "worst opt/alg",
               "mean work/upd", "overruns"});
  const VertexId n = 1200;
  Rng rng(7);
  const double radius = gen::unit_disk_radius_for_degree(n, 14.0);
  const UpdateScript script = unit_disk_churn(n, radius, n / 2, 800, rng);
  for (double scale : {0.5, 2.0, 8.0}) {
    WindowMatcherOptions opt;
    opt.beta = 5;
    opt.eps = 0.4;
    opt.delta_scale = 0.5;
    opt.budget_scale = scale;
    WindowMatcher wm(n, opt);
    StreamingStats ratio;
    std::size_t step = 0;
    for (const Update& u : script) {
      if (u.insert) {
        wm.insert_edge(u.edge.u, u.edge.v);
      } else {
        wm.delete_edge(u.edge.u, u.edge.v);
      }
      if (++step % 500 == 0) {
        const VertexId opt_size = reference_mcm_size(wm.graph().snapshot());
        if (opt_size > 0) {
          ratio.add(static_cast<double>(opt_size) /
                    std::max<VertexId>(1, wm.matching().size()));
        }
      }
    }
    table.row()
        .cell(scale, 1)
        .cell(ratio.mean(), 4)
        .cell(ratio.max(), 4)
        .cell(static_cast<double>(wm.total_work()) /
                  static_cast<double>(script.size()),
              1)
        .cell(wm.window_overruns());
  }
  table.print();
  std::printf("# the bootstrap budget only matters until the first paced "
              "window; larger scales buy nothing but early-phase work.\n");
}

}  // namespace

int main() {
  banner("E15 design-choice ablations",
         "low-degree tweak, marking rule, proof-vs-practical constants, "
         "dynamic pacing");
  table_marking_rules();
  table_delta_scale();
  table_budget_scale();
  return 0;
}
