// E7 — Theorem 3.2: distributed (1+ε)-MCM round complexity — the n-
//       dependence is log*-flat (symmetry breaking), everything else
//       depends only on (β, ε).
// E8 — Theorem 3.3: total message complexity ~ T(n)·|E(G_Δ)|, i.e.
//       messages/m → 0 on dense families (sublinear communication).
#include "bench_common.hpp"

#include "dist/pipeline.hpp"
#include "dist/sparsifier_protocols.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;
using namespace matchsparse::dist;

int main() {
  banner("E7/E8 distributed pipeline (Theorems 3.2, 3.3)",
         "rounds ~ f(beta,eps) + O(log* n)-ish symmetry breaking; "
         "messages sublinear in m on dense inputs");

  Table table("E7/E8  K_n sweep (beta=1, eps=0.6, unicast 1-bit marks)",
              {"n", "m", "rounds:spars", "rounds:maximal", "rounds:augment",
               "messages", "messages/m", "bits/m", "ratio @2approx stage",
               "ratio final"});
  DistributedMatchingOptions opt;
  opt.beta = 1;
  opt.eps = 0.6;
  opt.delta_scale = 1.0;
  opt.alpha_scale = 1.0;
  opt.augmenting.windows_per_phase = 8;

  for (VertexId n : {200u, 400u, 800u, 1600u}) {
    const Graph g = gen::complete_graph(n);
    const auto result = distributed_approx_matching(g, opt, mix64(n, 9));
    const double m = static_cast<double>(g.num_edges());
    const double ref = reference_mcm_size(g);
    table.row()
        .cell(n)
        .cell(g.num_edges())
        .cell(result.stage_sparsify.rounds + result.stage_degree.rounds)
        .cell(result.stage_maximal.rounds)
        .cell(result.stage_augment.rounds)
        .cell(result.total_messages())
        .cell(static_cast<double>(result.total_messages()) / m, 4)
        .cell(static_cast<double>(result.total_bits()) / m, 4)
        .cell(ref / static_cast<double>(std::max<VertexId>(
                        1, result.maximal_stage_matching.size())),
              4)
        .cell(ref / static_cast<double>(
                        std::max<VertexId>(1, result.matching.size())),
              4);
  }
  table.print();
  std::printf(
      "# shape check: sparsifier stages are constant-round; maximal-stage "
      "rounds grow ~log n; augment rounds are n-independent (fixed "
      "(beta,eps) schedule); messages/m FALLS as m = Theta(n^2) grows — "
      "the Theorem 3.3 sublinearity. The @2approx column is the quality "
      "of stopping after the maximal stage (the Barenboim–Oren-grade "
      "answer the Theorem 3.2 remark compares against); the augmenting "
      "phases close the gap to (1+eps).\n");

  Table congest("E7.c  stage-4 model comparison on K_800: LOCAL blobs vs "
                "CONGEST tokens",
                {"stage-4 model", "rounds", "messages", "bits",
                 "max bits/msg", "ratio vs exact"});
  for (bool use_congest : {false, true}) {
    DistributedMatchingOptions copt = opt;
    copt.congest_augmenting = use_congest;
    const Graph g = gen::complete_graph(800);
    const auto result = distributed_approx_matching(g, copt, 777);
    const double ref = reference_mcm_size(g);
    congest.row()
        .cell(use_congest ? "CONGEST (65-bit tokens)" : "LOCAL (path blobs)")
        .cell(result.stage_augment.rounds)
        .cell(result.stage_augment.messages)
        .cell(result.stage_augment.bits)
        .cell(result.stage_augment.messages == 0
                  ? 0.0
                  : static_cast<double>(result.stage_augment.bits) /
                        static_cast<double>(result.stage_augment.messages),
              1)
        .cell(ref / static_cast<double>(
                        std::max<VertexId>(1, result.matching.size())),
              4);
  }
  congest.print();
  std::printf("# shape check: identical round schedule; the CONGEST "
              "variant routes AUGMENTs via locked back-pointers instead "
              "of shipping paths, capping every message at O(log n) "
              "bits — the model the paper names alongside LOCAL.\n");

  Table bcast("E8.b  sparsifier stage, unicast vs broadcast systems "
              "(K_n, delta=8)",
              {"n", "system", "messages", "bits", "bits/mark"});
  for (VertexId n : {400u, 1600u}) {
    const Graph g = gen::complete_graph(n);
    const VertexId delta = 8;
    {
      Network net(g, 5);
      RandomSparsifierProtocol protocol(n, delta);
      const TrafficStats s = net.run(protocol, 4);
      bcast.row().cell(n).cell("unicast (1-bit marks)").cell(s.messages)
          .cell(s.bits)
          .cell(static_cast<double>(s.bits) / (n * delta), 2);
    }
    {
      Network net(g, 5);
      BroadcastSparsifierProtocol protocol(n, delta);
      const TrafficStats s = net.run(protocol, 4);
      bcast.row().cell(n).cell("broadcast (port lists)").cell(s.messages)
          .cell(s.bits)
          .cell(static_cast<double>(s.bits) / (n * delta), 2);
    }
  }
  bcast.print();
  std::printf("# shape check: the paper's §3.2 remark — unicast systems "
              "build G_delta with n*delta 1-bit messages; broadcast "
              "systems must ship O(delta log n)-bit port lists, paying "
              "~32x more bits here (and sublinear message complexity is "
              "impossible in broadcast, as §3.2.1 argues).\n");

  Table fam("E7.b  bounded-beta families at n=1200 (eps=0.6)",
            {"family", "beta<=", "m", "total rounds", "messages",
             "messages/m", "ratio vs exact"});
  for (const auto& family : gen::standard_families()) {
    const VertexId n = family.name == "complete" ? 800 : 1200;
    const Graph g = family.make(n, 5);
    DistributedMatchingOptions fopt = opt;
    fopt.beta = family.beta_bound;
    const auto result = distributed_approx_matching(g, fopt, 77);
    const double ref = reference_mcm_size(g);
    fam.row()
        .cell(family.name)
        .cell(family.beta_bound)
        .cell(g.num_edges())
        .cell(result.total_rounds())
        .cell(result.total_messages())
        .cell(static_cast<double>(result.total_messages()) /
                  static_cast<double>(g.num_edges()),
              4)
        .cell(ref / static_cast<double>(
                        std::max<VertexId>(1, result.matching.size())),
              4);
  }
  fam.print();
  std::printf("# note: sparse families (m ~ n*const) cannot show sublinear "
              "messages — the theorem's win is specifically m >> n*delta; "
              "the complete row is the regime the paper targets.\n");
  return 0;
}
