// E11 — Lemma 2.2: in a graph with no isolated vertices and neighborhood
// independence β, every maximum matching has |M| >= n/(β+2). The table
// sweeps families and sizes and reports |M|·(β+2)/n, which must be >= 1.
#include "bench_common.hpp"

#include "graph/beta.hpp"

using namespace matchsparse;
using namespace matchsparse::bench;

int main() {
  banner("E11 matching lower bound (Lemma 2.2)",
         "|MCM| >= n'/(beta+2) with n' the non-isolated vertex count");

  Table table("E11  |MCM|*(beta+2)/n' across families and sizes",
              {"family", "n'", "measured beta", "|MCM|",
               "|MCM|(beta+2)/n'", "ok"});
  for (const auto& family : gen::standard_families()) {
    for (VertexId target : {300u, 1200u}) {
      const VertexId n = family.name == "complete"
                             ? std::min<VertexId>(target, 500)
                             : target;
      const Graph g = family.make(n, 13);
      if (g.num_non_isolated() == 0) continue;
      const auto beta = neighborhood_independence(g);
      const double mcm = reference_mcm_size(g);
      const double lhs = mcm * (beta.value + 2) /
                         static_cast<double>(g.num_non_isolated());
      table.row()
          .cell(family.name)
          .cell(g.num_non_isolated())
          .cell(beta.value)
          .cell(mcm, 0)
          .cell(lhs, 4)
          .cell(lhs >= 1.0 ? "yes" : "NO");
    }
  }
  // The tight-ish extreme: a star has beta = n-1 and |MCM| = 1, so the
  // normalised value is exactly (n+1)/n.
  {
    const Graph g = gen::star(400);
    const auto beta = neighborhood_independence(g);
    const double lhs =
        1.0 * (beta.value + 2) / static_cast<double>(g.num_vertices());
    table.row().cell("star (tight)").cell(400u).cell(beta.value).cell(1.0, 0)
        .cell(lhs, 4).cell(lhs >= 1.0 ? "yes" : "NO");
  }
  table.print();
  return 0;
}
